"""Deterministic synthetic-input generators.

The paper's workloads consume external inputs (address traces, images,
vertex streams, database files).  We regenerate equivalents with a fixed
linear-congruential generator so every run of every experiment sees
byte-identical inputs — determinism is what lets the cycle-count tables
reproduce exactly.
"""

from __future__ import annotations


class Lcg:
    """Numerical-Recipes-flavoured 32-bit linear congruential generator."""

    MULTIPLIER = 1664525
    INCREMENT = 1013904223
    MODULUS = 2 ** 32

    def __init__(self, seed: int = 0x2F6E2B1):
        self.state = seed % self.MODULUS

    def next_int(self, bound: int) -> int:
        """Uniform-ish integer in [0, bound)."""
        self.state = (
            self.state * self.MULTIPLIER + self.INCREMENT
        ) % self.MODULUS
        return (self.state >> 8) % bound

    def next_float(self) -> float:
        """Uniform-ish float in [0, 1)."""
        return self.next_int(1 << 24) / float(1 << 24)

    def choice(self, items):
        return items[self.next_int(len(items))]


def address_trace(count: int, seed: int = 7,
                  working_set: int = 64 * 1024,
                  locality: float = 0.8,
                  stride: int = 4) -> list[int]:
    """A synthetic memory-reference trace with spatial locality.

    With probability ``locality`` the next reference is sequential from
    the previous one; otherwise it jumps to a random location in the
    working set — a standard first-order model of the traces dinero
    consumes.
    """
    rng = Lcg(seed)
    trace: list[int] = []
    addr = rng.next_int(working_set)
    for _ in range(count):
        if rng.next_float() < locality:
            addr = (addr + stride) % working_set
        else:
            addr = rng.next_int(working_set)
        trace.append(addr)
    return trace


def convolution_matrix(rows: int = 11, cols: int = 11,
                       ones_fraction: float = 0.09,
                       zeros_fraction: float = 0.83,
                       seed: int = 3) -> list[list[float]]:
    """A convolution matrix matching Table 1's pnmconvol input:
    11×11 with 9% ones and 83% zeroes (the rest are other weights)."""
    rng = Lcg(seed)
    total = rows * cols
    n_ones = round(total * ones_fraction)
    n_zeros = round(total * zeros_fraction)
    n_other = total - n_ones - n_zeros
    values = (
        [1.0] * n_ones
        + [0.0] * n_zeros
        + [round(0.1 + 0.8 * rng.next_float(), 3) for _ in range(n_other)]
    )
    # Deterministic shuffle (Fisher-Yates with the LCG).
    for i in range(total - 1, 0, -1):
        j = rng.next_int(i + 1)
        values[i], values[j] = values[j], values[i]
    return [values[r * cols:(r + 1) * cols] for r in range(rows)]


def grayscale_image(rows: int, cols: int, seed: int = 11) -> list[float]:
    """A synthetic grayscale image (row-major floats in [0, 256))."""
    rng = Lcg(seed)
    return [round(rng.next_float() * 255.0, 2)
            for _ in range(rows * cols)]


def sparse_vector(count: int, zeros_fraction: float,
                  seed: int = 5) -> list[float]:
    """dotproduct's static vector: Table 1 uses 100 ints, 90% zeroes."""
    rng = Lcg(seed)
    n_zeros = round(count * zeros_fraction)
    values = [0.0] * n_zeros + [
        float(1 + rng.next_int(9)) for _ in range(count - n_zeros)
    ]
    for i in range(count - 1, 0, -1):
        j = rng.next_int(i + 1)
        values[i], values[j] = values[j], values[i]
    return values


def database_records(count: int, fields: int, seed: int = 13,
                     bound: int = 100) -> list[list[int]]:
    """Synthetic fixed-width integer records for the query kernel."""
    rng = Lcg(seed)
    return [
        [rng.next_int(bound) for _ in range(fields)]
        for _ in range(count)
    ]


def vertex_stream(count: int, seed: int = 17) -> list[float]:
    """Homogeneous 3-D vertices (x, y, z, 1) for viewperf."""
    rng = Lcg(seed)
    out: list[float] = []
    for _ in range(count):
        out.extend([
            round(rng.next_float() * 4.0 - 2.0, 3),
            round(rng.next_float() * 4.0 - 2.0, 3),
            round(rng.next_float() * 4.0 - 2.0, 3),
            1.0,
        ])
    return out
