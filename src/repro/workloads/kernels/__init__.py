"""The kernel benchmarks used by prior dynamic-compilation systems.

Included "to provide continuity to previous studies and to contrast
their characteristics with the larger programs" (§3.1).  Each is one to
two orders of magnitude smaller than the applications.
"""
