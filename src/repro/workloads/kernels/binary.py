"""binary — binary search over a static array (Table 1: 16 integers).

Both the array pointer and its *contents* are annotated static.  The
search loop's bounds (lo/hi) are annotated, so polyvariant
specialization unrolls the loop — and because the comparison against the
(dynamic) key branches to iterations that update lo/hi *differently*,
the unrolled result is a comparison *tree*: multi-way unrolling.  The
array loads fold away, leaving pure compare-and-branch code with the
probed values as immediates.
"""

from __future__ import annotations

from repro.ir.memory import Memory
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.inputs import Lcg

ARRAY_SIZE = 16
SEARCHES = 1500

SOURCE = """
func bsearch(arr, n, key) {
    make_static(arr, n, lo, hi, mid) : cache_one_unchecked;
    var lo = 0;
    var hi = n - 1;
    while (lo <= hi) {
        var mid = (lo + hi) / 2;
        var probe = arr@[mid];
        if (probe == key) { return mid; }
        if (probe < key) { lo = mid + 1; }
        else { hi = mid - 1; }
    }
    return 0 - 1;
}

func main(arr, n, keys, nkeys) {
    var found = 0;
    for (q = 0; q < nkeys; q = q + 1) {
        var idx = bsearch(arr, n, keys[q]);
        if (idx >= 0) { found = found + 1; }
    }
    print_val(found);
    return found;
}
"""


def _setup(mem: Memory) -> WorkloadInput:
    rng = Lcg(seed=0xACE)
    # Values fit the Alpha literal field, as small integer keys would.
    values = sorted({rng.next_int(250) for _ in range(ARRAY_SIZE * 2)})
    values = values[:ARRAY_SIZE]
    while len(values) < ARRAY_SIZE:
        values.append(values[-1] + 1)
    arr = mem.alloc_array(values)
    keys = [rng.choice(values) if rng.next_float() < 0.5
            else rng.next_int(250) for _ in range(SEARCHES)]
    keys_base = mem.alloc_array(keys)
    args = [arr, ARRAY_SIZE, keys_base, SEARCHES]

    def checksum(memory: Memory, machine) -> tuple:
        return tuple(machine.output)

    return WorkloadInput(args=args, checksum=checksum)


BINARY = Workload(
    name="binary",
    kind="kernel",
    description="binary search over an array",
    static_vars="the input array and its contents",
    static_values="16 integers",
    source=SOURCE,
    entry="main",
    region_functions=("bsearch",),
    setup=_setup,
    breakeven_unit="searches",
    units_per_invocation=1.0,
)
