"""chebyshev — polynomial function approximation (Table 1: degree 10).

Chebyshev interpolation evaluates ``f`` at the Chebyshev nodes and forms
coefficients ``c_j = 2/n * Σ_k f(x_k)·cos(πj(k+½)/n)``.  With the degree
annotated static, both coefficient loops unroll and — the key
optimization (§4.4.4) — the ``cos`` calls are *static calls*, memoized
at dynamic compile time: "treating calls to cosine as static in
chebyshev turned a marginal 20% advantage into a 6-fold speedup".  What
remains at run time is just the Clenshaw recurrence on the dynamic
evaluation point.
"""

from __future__ import annotations

from repro.ir.memory import Memory
from repro.workloads.base import Workload, WorkloadInput

DEGREE = 10
EVALUATIONS = 40

SOURCE = """
// The function being approximated.  Deliberately *unannotated*: DyC
// treats calls to unannotated functions as dynamic even with static
// arguments (§2.2.6, they may have side effects), so the integrand is
// re-evaluated at run time — only the cos() node/weight computations
// fold away.  That split is what yields the paper's 6x (§4.4.4).
func fdyn(x) {
    return 1.0 / (1.0 + x * x);
}

// Evaluate the degree-n Chebyshev approximation of fdyn at x.
func cheb(n, x) {
    make_static(n, j, k) : cache_one_unchecked;
    var pi = 3.141592653589793;
    // Clenshaw recurrence state (dynamic: depends on x).
    var d1 = 0.0;
    var d2 = 0.0;
    var y = 2.0 * x;
    for (j = n - 1; j >= 1; j = j - 1) {
        // Coefficient c_j: the Chebyshev nodes and weights are static
        // (cos memoized at dynamic compile time); the function values
        // are dynamic calls on (folded) constant arguments.
        var c = 0.0;
        for (k = 0; k < n; k = k + 1) {
            var node = cos(pi * (k + 0.5) / n);
            c = c + fdyn(node) * cos(pi * j * (k + 0.5) / n);
        }
        c = c * (2.0 / n);
        var save = d1;
        d1 = y * d1 - d2 + c;
        d2 = save;
    }
    // j = 0 term (halved).
    var c0 = 0.0;
    for (k = 0; k < n; k = k + 1) {
        c0 = c0 + fdyn(cos(pi * (k + 0.5) / n));
    }
    c0 = c0 * (2.0 / n);
    return x * d1 - d2 + 0.5 * c0;
}

func main(n, points, npoints) {
    var check = 0.0;
    for (p = 0; p < npoints; p = p + 1) {
        check = check + cheb(n, points[p]);
    }
    print_val(check);
    return 0;
}
"""


def _setup(mem: Memory) -> WorkloadInput:
    points = [(-1.0 + 2.0 * p / (EVALUATIONS - 1))
              for p in range(EVALUATIONS)]
    base = mem.alloc_array(points)
    args = [DEGREE, base, EVALUATIONS]

    def checksum(memory: Memory, machine) -> tuple:
        return tuple(round(v, 6) for v in machine.output)

    return WorkloadInput(args=args, checksum=checksum)


CHEBYSHEV = Workload(
    name="chebyshev",
    kind="kernel",
    description="polynomial function approximation",
    static_vars="the degree of the polynomial",
    static_values="10",
    source=SOURCE,
    entry="main",
    region_functions=("cheb",),
    setup=_setup,
    breakeven_unit="interpolations",
    units_per_invocation=1.0,
)
