"""dotproduct — dot product with one static vector.

Table 1's input: a 100-element vector with 90% zeroes.  The static
vector's loads fold; the loop unrolls single-way; and dynamic zero/copy
propagation plus dead-assignment elimination delete the zero terms
entirely — "dotproduct's static input vector was 90% zeroes and
therefore most of the calculations were eliminated" (§4.2).

``make_dotproduct(zeros_fraction)`` builds the density-sweep variants of
the paper's aside: with denser vectors the speedup falls to
kernel-typical levels, and with *no* zeroes the dynamically compiled
version can lose outright (constant materialization costs as much as the
loads it replaces, and the 21164 gives statically scheduled loops the
benefit of the doubt).
"""

from __future__ import annotations

from repro.ir.memory import Memory
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.inputs import Lcg, sparse_vector

VECTOR_SIZE = 100
PRODUCTS = 60

SOURCE = """
func dotproduct(v, w, n) {
    make_static(v, n, i) : cache_one_unchecked;
    var s = 0.0;
    for (i = 0; i < n; i = i + 1) {
        s = s + v@[i] * w[i];
    }
    return s;
}

func main(v, ws, n, reps) {
    var check = 0.0;
    for (r = 0; r < reps; r = r + 1) {
        check = check + dotproduct(v, ws + (r % 4) * n, n);
    }
    print_val(check);
    return 0;
}
"""


def make_setup(zeros_fraction: float):
    def _setup(mem: Memory) -> WorkloadInput:
        rng = Lcg(seed=0xD07)
        static_vec = sparse_vector(VECTOR_SIZE, zeros_fraction)
        v = mem.alloc_array(static_vec)
        # Four dynamic vectors cycled through by the driver.
        ws = mem.alloc_array([
            round(rng.next_float() * 10.0, 3)
            for _ in range(4 * VECTOR_SIZE)
        ])
        args = [v, ws, VECTOR_SIZE, PRODUCTS]

        def checksum(memory: Memory, machine) -> tuple:
            return tuple(round(x, 6) for x in machine.output)

        return WorkloadInput(args=args, checksum=checksum)

    return _setup


def make_dotproduct(zeros_fraction: float = 0.9) -> Workload:
    """The dotproduct kernel with a configurable vector density."""
    pct = round(zeros_fraction * 100)
    return Workload(
        name="dotproduct" if zeros_fraction == 0.9
        else f"dotproduct-{pct}z",
        kind="kernel",
        description="dot-product of two vectors",
        static_vars="the contents of one of the vectors",
        static_values=f"a 100-integer array with {pct}% zeroes",
        source=SOURCE,
        entry="main",
        region_functions=("dotproduct",),
        setup=make_setup(zeros_fraction),
        breakeven_unit="dot products",
        units_per_invocation=1.0,
    )


DOTPRODUCT = make_dotproduct(0.9)
