"""query — test a database entry for a match (Table 1: 7 comparisons).

The query — an array of (field, operator, value) triples — is annotated
static.  The loop over query terms unrolls completely, the query-term
loads fold, and each emitted comparison carries its threshold as an
immediate: the generic predicate interpreter specializes into straight-
line compare code for the particular query, once per query.
"""

from __future__ import annotations

from repro.ir.memory import Memory
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.inputs import database_records

FIELDS = 8
RECORDS = 700
TERMS = 7

#: Query operators.
OP_EQ, OP_LT, OP_GT = 0, 1, 2

SOURCE = """
// Does the fixed-width record at `rec` satisfy every query term?
// Query layout: nterms triples [field, op, value]; op: 0 ==, 1 <, 2 >.
func match(rec, q, nterms) {
    make_static(q, nterms, t) : cache_one_unchecked;
    for (t = 0; t < nterms; t = t + 1) {
        var field = q@[t * 3];
        var op = q@[t * 3 + 1];
        var value = q@[t * 3 + 2];
        var actual = rec[field];
        if (op == 0) {
            if (actual != value) { return 0; }
        } else { if (op == 1) {
            if (actual >= value) { return 0; }
        } else {
            if (actual <= value) { return 0; }
        } }
    }
    return 1;
}

func main(db, nrecords, nfields, q, nterms) {
    var matches = 0;
    for (r = 0; r < nrecords; r = r + 1) {
        matches = matches + match(db + r * nfields, q, nterms);
    }
    print_val(matches);
    return matches;
}
"""

#: The paper's "a query / 7 comparisons": a conjunctive 7-term query.
QUERY_TERMS = [
    0, OP_LT, 80,
    1, OP_GT, 10,
    2, OP_LT, 90,
    3, OP_GT, 5,
    4, OP_LT, 95,
    5, OP_GT, 20,
    6, OP_LT, 70,
]


def _setup(mem: Memory) -> WorkloadInput:
    records = database_records(RECORDS, FIELDS)
    db = mem.alloc_array([v for rec in records for v in rec])
    q = mem.alloc_array(QUERY_TERMS)
    args = [db, RECORDS, FIELDS, q, TERMS]

    def checksum(memory: Memory, machine) -> tuple:
        return tuple(machine.output)

    return WorkloadInput(args=args, checksum=checksum)


QUERY = Workload(
    name="query",
    kind="kernel",
    description="tests database entry for match",
    static_vars="a query",
    static_values="7 comparisons",
    source=SOURCE,
    entry="main",
    region_functions=("match",),
    setup=_setup,
    breakeven_unit="database entry comparisons",
    units_per_invocation=1.0,
)
