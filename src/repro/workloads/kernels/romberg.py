"""romberg — function integration by iteration (Table 1: bound 6).

The Romberg iteration bound is annotated static, so the refinement and
Richardson-extrapolation loops unroll completely, the node coefficients
``(2k−1)`` and extrapolation denominators ``4^j − 1`` fold into
immediates, and only the integrand evaluations and the tableau
loads/stores remain dynamic.  The speedup is modest (the paper reports
1.3): the dynamic work — integrand calls — dominates, which is exactly
why romberg exercises so few of DyC's optimizations (Table 2).
"""

from __future__ import annotations

from repro.ir.memory import Memory
from repro.workloads.base import Workload, WorkloadInput

LEVELS = 6
INTEGRATIONS = 24

SOURCE = """
// The integrand: deliberately *not* pure-annotated; it is evaluated at
// dynamic points, so its calls stay in the emitted code.
func integrand(x) {
    return 1.0 / (1.0 + x * x);
}

// Romberg integration of `integrand` over [a, b] with m levels.
// r is an m-word scratch tableau row.
func romberg(m, a, b, r) {
    make_static(m, i, j, k, npts, p4) : cache_one_unchecked;
    var h = b - a;
    r[0] = (integrand(a) + integrand(b)) * h / 2.0;
    var npts = 1;
    for (i = 1; i < m; i = i + 1) {
        h = h / 2.0;
        var sum = 0.0;
        for (k = 1; k <= npts; k = k + 1) {       // npts = 2^(i-1)
            sum = sum + integrand(a + (2.0 * k - 1.0) * h);
        }
        var prev = r[0];
        r[0] = r[0] / 2.0 + sum * h;
        var p4 = 4.0;
        for (j = 1; j <= i; j = j + 1) {
            // The 4^j - 1 denominators are run-time constants: dynamic
            // strength reduction turns each divide into a multiply by
            // the reciprocal.
            var cur = r[j - 1] + (r[j - 1] - prev) / (p4 - 1.0);
            prev = r[j];
            r[j] = cur;
            p4 = p4 * 4.0;
        }
        npts = npts * 2;
    }
    return r[m - 1];
}

func main(m, bounds, nruns, r) {
    var check = 0.0;
    for (t = 0; t < nruns; t = t + 1) {
        var a = bounds[t * 2];
        var b = bounds[t * 2 + 1];
        check = check + romberg(m, a, b, r);
    }
    print_val(check);
    return 0;
}
"""


def _setup(mem: Memory) -> WorkloadInput:
    bounds = []
    for t in range(INTEGRATIONS):
        a = -1.0 + 0.05 * t
        bounds.extend([a, a + 2.0])
    bounds_base = mem.alloc_array(bounds)
    r = mem.alloc(LEVELS, fill=0.0)
    args = [LEVELS, bounds_base, INTEGRATIONS, r]

    def checksum(memory: Memory, machine) -> tuple:
        return tuple(round(v, 6) for v in machine.output)

    return WorkloadInput(args=args, checksum=checksum)


ROMBERG = Workload(
    name="romberg",
    kind="kernel",
    description="function integration by iteration",
    static_vars="the iteration bound",
    static_values="6",
    source=SOURCE,
    entry="main",
    region_functions=("romberg",),
    setup=_setup,
    breakeven_unit="integrations",
    units_per_invocation=1.0,
)
