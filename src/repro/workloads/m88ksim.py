"""m88ksim — the SPEC95 Motorola 88000 simulator.

The dynamically compiled function is ``ckbrkpts``, the breakpoint check
executed once per simulated instruction.  The breakpoint table is
annotated static; the check loop unrolls completely over the table
(single-way), the table loads fold away, and — with the SPEC input, which
sets *no* breakpoints — the entire region collapses to ``return 0``
(Table 3: only 6 instructions generated).

Because the region is entered once per simulated instruction, the
``cache_one_unchecked`` policy is essential here (§4.4.3): a hash lookup
per instruction would swamp the tiny region.

The surrounding program is a small 88000-flavoured CPU simulator main
loop (fetch/decode/execute over a register file), sized so the breakpoint
check accounts for roughly the paper's ~10% of execution (Table 4).

``make_m88ksim(num_breakpoints)`` builds the 5-breakpoint variant used by
the paper's aside in §4.2 (98 generated instructions, lower per-
instruction overhead).
"""

from __future__ import annotations

from repro.ir.memory import Memory
from repro.workloads.base import Workload, WorkloadInput

#: Instructions simulated per run.
PROGRAM_STEPS = 1500

#: Slots in the fixed-size breakpoint table (m88ksim scans the whole
#: table, testing each slot's valid flag).
MAX_BREAKPOINTS = 10

SOURCE = """
// Breakpoint check, run before every simulated instruction.  The table
// has 10 fixed slots of [valid, addr]; like m88ksim's, the check scans
// every slot and tests its valid flag.  With the table static, the scan
// unrolls and the flag tests fold: with no breakpoints set (the SPEC
// input), the whole region collapses to `return 0`.
func ckbrkpts(bps, pc) {
    make_static(bps, i) : cache_one_unchecked;
    for (i = 0; i < 10; i = i + 1) {
        if (bps@[i * 2] == 1) {
            if (bps@[i * 2 + 1] == pc) { return 1; }
        }
    }
    return 0;
}

// An 88000-flavoured execute loop: a tiny RISC with 8 registers.
// Instruction encoding (3 words): [opcode, dest/src, operand]
//   0 halt | 1 li r,imm | 2 add r,r2 | 3 sub r,r2 | 4 ld r,[addr]
//   5 st r,[addr] | 6 bnz r,target | 7 mul r,r2
func simulate(prog, regs, data, bps, pipe, maxsteps) {
    var pc = 0;
    var steps = 0;
    var running = 1;
    var stalls = 0;
    while (running) {
        if (steps >= maxsteps) { running = 0; }
        else {
            if (ckbrkpts(bps, pc) == 1) { running = 0; }
            else {
                var op = prog[pc * 3];
                var a = prog[pc * 3 + 1];
                var b = prog[pc * 3 + 2];
                pc = pc + 1;
                if (op == 0) { running = 0; }
                else { if (op == 1) { regs[a] = b; }
                else { if (op == 2) { regs[a] = regs[a] + regs[b]; }
                else { if (op == 3) { regs[a] = regs[a] - regs[b]; }
                else { if (op == 4) { regs[a] = data[regs[b]]; }
                else { if (op == 5) { data[regs[b]] = regs[a]; }
                else { if (op == 6) {
                    if (regs[a] != 0) { pc = b; }
                }
                else { regs[a] = regs[a] * regs[b]; } } } } } } }
                // Pipeline/timing model: advance the 12-stage pipe and
                // account stalls (m88ksim models the 88100's pipeline
                // and caches per instruction).
                for (st = 0; st < 11; st = st + 1) {
                    pipe[st] = pipe[st + 1];
                    stalls = stalls + pipe[st];
                }
                pipe[11] = op & 3;
                steps = steps + 1;
            }
        }
    }
    return steps;
}

func main(prog, regs, data, bps, pipe, maxsteps) {
    var steps = simulate(prog, regs, data, bps, pipe, maxsteps);
    print_val(steps);
    print_val(regs[0]);
    print_val(data[0]);
    return steps;
}
"""

#: The simulated 88000 program: an inner counting loop with memory
#: traffic — r0 accumulates, r1 counts down, data[r2] updated.
_SIM_PROGRAM = [
    1, 0, 0,      # 0: li r0, 0
    1, 1, 4000,   # 1: li r1, 4000       (loop trip count; maxsteps cuts)
    1, 2, 0,      # 2: li r2, 0
    1, 3, 1,      # 3: li r3, 1
    # loop:
    2, 0, 3,      # 4: add r0, r3
    5, 0, 2,      # 5: st  r0, [r2]
    4, 4, 2,      # 6: ld  r4, [r2]
    2, 4, 3,      # 7: add r4, r3
    3, 1, 3,      # 8: sub r1, r3
    6, 1, 4,      # 9: bnz r1, loop
    0, 0, 0,      # 10: halt
]


def make_setup(num_breakpoints: int):
    def _setup(mem: Memory) -> WorkloadInput:
        prog = mem.alloc_array(_SIM_PROGRAM)
        regs = mem.alloc(8)
        data = mem.alloc(64)
        table = []
        for k in range(MAX_BREAKPOINTS):
            if k < num_breakpoints:
                # Breakpoints on addresses the program never reaches, so
                # the emitted compare chain runs in full per instruction
                # (the paper's 5-breakpoint aside).
                table.extend([1, 100 + k])
            else:
                table.extend([0, 0])
        bps = mem.alloc_array(table)
        pipe = mem.alloc(12, fill=0)
        args = [prog, regs, data, bps, pipe, PROGRAM_STEPS]

        def checksum(memory: Memory, machine) -> tuple:
            return tuple(machine.output)

        return WorkloadInput(args=args, checksum=checksum)

    return _setup


def make_m88ksim(num_breakpoints: int = 0) -> Workload:
    """m88ksim with a configurable breakpoint count (§4.2's aside)."""
    if num_breakpoints == 0:
        values = "no breakpoints"
    else:
        values = f"{num_breakpoints} breakpoints"
    return Workload(
        name="m88ksim" if num_breakpoints == 0
        else f"m88ksim-{num_breakpoints}bp",
        kind="application",
        description="Motorola 88000 simulator",
        static_vars="an array of breakpoints",
        static_values=values,
        source=SOURCE,
        entry="main",
        region_functions=("ckbrkpts",),
        setup=make_setup(num_breakpoints),
        breakeven_unit="breakpoint checks",
        units_per_invocation=1.0,
        notes=(
            "Simulated program scaled to 2500 instructions; the region "
            "is entered once per simulated instruction, as in the paper."
        ),
    )


M88KSIM = make_m88ksim(0)
