"""mipsi — the MIPS R3000 simulation framework.

The dynamically compiled function is the interpreter's ``run`` loop,
specialized to its input program (Table 1: bubble sort).  This is the
paper's showcase of *multi-way* complete loop unrolling (§2.2.4): the
program counter is annotated static, so

* instruction fetches become static loads (the decode logic folds away),
* the opcode dispatch folds per unrolled instruction,
* conditional branches of the *interpreted* program become dynamic
  branches between specialization contexts — reproducing the interpreted
  program's control-flow graph, back edges included, as native code,
* the (pure) address-translation routine is memoized at dynamic compile
  time (static calls),
* the interpreted ``jr`` (jump-register) instruction assigns a dynamic
  value to the static ``pc`` — an internal dynamic-to-static promotion
  (§2.2.2) that resumes specialization at the run-time jump target.

In effect, specializing mipsi to bubble sort *compiles bubble sort*.
"""

from __future__ import annotations

from repro.ir.memory import Memory
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.inputs import Lcg

#: Elements sorted by the interpreted bubble-sort program.
SORT_SIZE = 16

SOURCE = """
// Address translation (instruction fetch path): pure, so calls with a
// static pc are memoized at dynamic compile time.
pure func xlate(a) {
    return (a >> 2) * 16 + (a & 3) * 4;
}

// The interpreter.  ISA (4 words per instruction): [op, a, b, c]
//  0 halt | 1 li ra,b | 2 add ra,rb,rc | 3 sub ra,rb,rc
//  4 ld ra,[rb+c] | 5 st ra,[rb+c] | 6 blt ra,rb -> c | 7 jmp a
//  8 jal ra -> b | 9 jr ra | 10 addi ra,rb,c | 11 bge ra,rb -> c
func run(prog, regs, data) {
    make_static(prog, pc, running) : cache_one_unchecked;
    var pc = 0;
    var running = 1;
    while (running) {
        var base = xlate(pc);
        var op = prog@[base];
        var a = prog@[base + 1];
        var b = prog@[base + 2];
        var c = prog@[base + 3];
        pc = pc + 1;
        if (op == 0) { running = 0; }
        else { if (op == 1) { regs[a] = b; }
        else { if (op == 2) { regs[a] = regs[b] + regs[c]; }
        else { if (op == 3) { regs[a] = regs[b] - regs[c]; }
        else { if (op == 4) {
            var lea = regs[b] + c;      // absolute effective address
            regs[a] = lea[0];
        }
        else { if (op == 5) {
            var sea = regs[b] + c;
            sea[0] = regs[a];
        }
        else { if (op == 6) {
            if (regs[a] < regs[b]) { pc = c; }
        }
        else { if (op == 7) { pc = a; }
        else { if (op == 8) { regs[a] = pc; pc = b; }
        else { if (op == 9) { pc = regs[a]; }   // jr: promotes pc
        else { if (op == 10) { regs[a] = regs[b] + c; }
        else {
            if (regs[a] >= regs[b]) { pc = c; }
        } } } } } } } } } } }
    }
    return 0;
}

func main(prog, regs, data, n) {
    // r0 = data base, r1 = n
    regs[0] = data;
    regs[1] = n;
    run(prog, regs, data);
    // Emit the sorted array (mipsi reports simulated-program output).
    var check = 0;
    for (i = 0; i < n; i = i + 1) {
        check = check * 31 + data[i];
    }
    print_val(check);
    return check;
}
"""

#: The interpreted program: bubble sort over data[0..n-1].
#: Registers: r0=base, r1=n, r2=i, r3=j, r4=a, r5=addr, r6=b/limit,
#:            r7=link.
BUBBLE_SORT = [
    1, 2, 0, 0,     # 0:  li   r2, 0          ; i = 0
    # outer:
    1, 3, 0, 0,     # 1:  li   r3, 0          ; j = 0
    # inner:
    3, 6, 1, 2,     # 2:  sub  r6, r1, r2     ; limit = n - i
    10, 6, 6, -1,   # 3:  addi r6, r6, -1     ; limit = n - i - 1
    11, 3, 6, 12,   # 4:  bge  r3, r6 -> 12   ; j >= limit: end inner
    2, 5, 0, 3,     # 5:  add  r5, r0, r3     ; addr = base + j
    4, 4, 5, 0,     # 6:  ld   r4, [r5+0]     ; a = data[j]
    4, 6, 5, 1,     # 7:  ld   r6, [r5+1]     ; b = data[j+1]
    11, 6, 4, 10,   # 8:  bge  r6, r4 -> 10   ; b >= a: no swap
    8, 7, 16, 0,    # 9:  jal  r7 -> 16       ; call swap
    # noswap:
    10, 3, 3, 1,    # 10: addi r3, r3, 1      ; j++
    7, 2, 0, 0,     # 11: jmp  2
    # endinner:
    10, 2, 2, 1,    # 12: addi r2, r2, 1      ; i++
    10, 6, 1, -1,   # 13: addi r6, r1, -1
    6, 2, 6, 1,     # 14: blt  r2, r6 -> 1    ; i < n-1: outer again
    0, 0, 0, 0,     # 15: halt
    # swap:
    5, 6, 5, 0,     # 16: st   r6, [r5+0]
    5, 4, 5, 1,     # 17: st   r4, [r5+1]
    9, 7, 0, 0,     # 18: jr   r7             ; return (promotes pc)
]


def _setup(mem: Memory) -> WorkloadInput:
    rng = Lcg(seed=0xBEEF)
    values = [rng.next_int(1000) for _ in range(SORT_SIZE)]
    prog = mem.alloc_array(BUBBLE_SORT)
    regs = mem.alloc(8)
    data = mem.alloc_array(values)
    args = [prog, regs, data, SORT_SIZE]

    def checksum(memory: Memory, machine) -> tuple:
        return (
            tuple(memory.read_array(data, SORT_SIZE)),
            tuple(machine.output),
        )

    return WorkloadInput(args=args, checksum=checksum)


MIPSI = Workload(
    name="mipsi",
    kind="application",
    description="MIPS R3000 simulator",
    static_vars="its input program",
    static_values="bubble sort",
    source=SOURCE,
    entry="main",
    region_functions=("run",),
    setup=_setup,
    breakeven_unit="interpreted instructions",
    units_per_invocation=1.0,  # refined by the harness from run stats
    notes=(
        "Bubble sort over 16 elements (the paper's input interprets "
        "484634 instructions; the unrolled-code shape is input-program-"
        "size dependent, not run-length dependent)."
    ),
)
