"""pnmconvol — netpbm image convolution (the paper's running example).

The dynamically compiled function is ``do_convol`` (Figure 2).  The
convolution matrix, its dimensions, and its loop indices are annotated
static; the two inner loops completely unroll (single-way), the matrix
loads fold away, and the staged dynamic zero/copy propagation +
dead-assignment elimination turn the mostly-zero matrix (Table 1: 11×11,
9% ones, 83% zeroes) into almost no code per pixel (Figure 4): a ×0.0
weight deletes the multiply, the accumulate, *and* the now-dead image
load; a ×1.0 weight copy-propagates the image value straight into the
accumulate.

Dead-assignment elimination is pivotal here (§4.4.4): without it, the
generated code exceeded the paper's 8 KB L1 I-cache by 2.7×, making the
dynamic version *slower* than static code.  The paper's Alpha code
generator emits several machine instructions per IR operation, so at our
scaled-down image its absolute footprint is ~4× ours; the workload
declares a proportionally scaled I-cache (2 KB) to preserve the
footprint/capacity ratio the experiment is about.
"""

from __future__ import annotations

from repro.ir.memory import Memory
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.inputs import convolution_matrix, grayscale_image

#: Table 1 input: 11×11 with 9% ones, 83% zeroes.
CROWS = 11
CCOLS = 11
#: Image size (paper uses inputs shipped with netpbm; scaled down).
IROWS = 26
ICOLS = 26

SOURCE = """
// Figure 2's do_convol, in MiniC.  image/outbuf are row-major
// irows x icols float arrays; cmatrix is crows x ccols.
func do_convol(image, irows, icols, cmatrix, crows, ccols, outbuf) {
    make_static(cmatrix, crows, ccols, crow, ccol) : cache_one_unchecked;
    var crowso2 = crows / 2;
    var ccolso2 = ccols / 2;
    // Apply cmatrix to each (interior) pixel of the image.
    for (irow = crowso2; irow < irows - crowso2; irow = irow + 1) {
        var rowbase = irow - crowso2;
        for (icol = ccolso2; icol < icols - ccolso2; icol = icol + 1) {
            var colbase = icol - ccolso2;
            var sum = 0.0;
            // Loop over the convolution matrix: completely unrolled.
            // Addressing is per-element, exactly as in Figure 2; dead-
            // assignment elimination deletes it wherever the weight is
            // zero (the address arithmetic feeds only the dead load).
            for (crow = 0; crow < crows; crow = crow + 1) {
                for (ccol = 0; ccol < ccols; ccol = ccol + 1) {
                    var weight = cmatrix@[crow * ccols + ccol];
                    var x = image[(rowbase + crow) * icols
                                  + (colbase + ccol)];
                    var weighted_x = x * weight;
                    sum = sum + weighted_x;
                }
            }
            outbuf[irow * icols + icol] = sum;
        }
    }
    return 0;
}

// Driver: generate the image (stands in for PNM parsing), convolve,
// and checksum the output (stands in for PNM writing).
func main(image, irows, icols, cmatrix, crows, ccols, outbuf) {
    do_convol(image, irows, icols, cmatrix, crows, ccols, outbuf);
    var check = 0.0;
    for (i = 0; i < irows * icols; i = i + 1) {
        check = check + outbuf[i];
    }
    print_val(check);
    return 0;
}
"""


def _setup(mem: Memory) -> WorkloadInput:
    matrix_rows = convolution_matrix(CROWS, CCOLS)
    image_values = grayscale_image(IROWS, ICOLS)
    image = mem.alloc_array(image_values)
    cmatrix = mem.alloc_matrix(matrix_rows)
    outbuf = mem.alloc(IROWS * ICOLS, fill=0.0)
    args = [image, IROWS, ICOLS, cmatrix, CROWS, CCOLS, outbuf]

    def checksum(memory: Memory, machine) -> tuple:
        return tuple(
            round(v, 6) if isinstance(v, float) else v
            for v in machine.output
        )

    return WorkloadInput(args=args, checksum=checksum)


#: Interior pixels processed per invocation (the break-even unit).
PIXELS = (IROWS - (CROWS // 2) * 2) * (ICOLS - (CCOLS // 2) * 2)

PNMCONVOL = Workload(
    name="pnmconvol",
    kind="application",
    description="image convolution",
    static_vars="convolution matrix",
    static_values="11x11 with 9% ones, 83% zeroes",
    source=SOURCE,
    entry="main",
    region_functions=("do_convol",),
    setup=_setup,
    breakeven_unit="pixels",
    units_per_invocation=PIXELS,
    icache_capacity_bytes=2 * 1024,
    notes=(
        "I-cache scaled to 2KB: our IR is ~4x denser than the paper's "
        "Alpha code, so the footprint/capacity ratio (the quantity the "
        "DAE experiment depends on) is preserved."
    ),
)
