"""viewperf — the SPEC Viewperf driver over Mesa (OpenGL).

Two routines are dynamically compiled (Table 1):

``project_and_clip`` (Mesa's ``project_and_clip_test``)
    transforms vertices by the 4×4 projection matrix and computes clip
    flags.  The projection matrix is annotated static (Table 1: a
    perspective matrix), so the 4×4 inner loops unroll single-way, the
    matrix loads fold, and — since a perspective matrix is mostly zeros
    — dynamic zero propagation and dead-assignment elimination delete
    most of each dot product.

``shade`` (Mesa's ``gl_color_shade_vertices``)
    per-vertex lighting with static light parameters.  The front/back
    material split is the paper's polyvariant-division example
    (§4.4.4): on the one-sided path the material color is annotated
    static (and folds into the emitted per-vertex code); on the
    two-sided path it is a dynamic argument.  Both divisions of the
    downstream loop are compiled, each optimized for its own binding
    times.  The original Mesa shipped hand-specialized shader variants;
    following §3.1 we keep only the general-purpose routine and let
    dynamic compilation generate the specialized versions.
"""

from __future__ import annotations

from repro.ir.memory import Memory
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.inputs import vertex_stream

#: Vertices per frame and frames per run.
VERTICES = 60
FRAMES = 14

#: A perspective projection matrix (fovy 90°, near 1, far 10): mostly
#: zeros — the ZCP/DAE fodder the paper's speedup comes from.
PROJECTION = [
    1.0, 0.0, 0.0, 0.0,
    0.0, 1.0, 0.0, 0.0,
    0.0, 0.0, -1.2222222, -2.2222222,
    0.0, 0.0, -1.0, 0.0,
]

SOURCE = """
// Mesa project_and_clip_test: out = M * v per vertex, plus clip flags.
func project_and_clip(m, verts, n, out, clipflags) {
    make_static(m, r, c) : cache_one_unchecked;
    for (v = 0; v < n; v = v + 1) {
        for (r = 0; r < 4; r = r + 1) {
            var sum = 0.0;
            for (c = 0; c < 4; c = c + 1) {
                sum = sum + m@[r * 4 + c] * verts[v * 4 + c];
            }
            out[v * 4 + r] = sum;
        }
        // Branchless clip-mask computation (as Mesa does).
        var x = out[v * 4];
        var y = out[v * 4 + 1];
        var w = out[v * 4 + 3];
        var f0 = x < 0.0 - w;
        var f1 = (x > w) << 1;
        var f2 = (y < 0.0 - w) << 2;
        var f3 = (y > w) << 3;
        clipflags[v] = f0 | f1 | f2 | f3;
    }
    return 0;
}

// Mesa gl_color_shade_vertices (simplified to one light + ambient).
func shade(verts, n, colors, lr, lg, lb, amb, k0, k1, twoside,
           backr, backg, backb) {
    make_static(lr, lg, lb, amb, k0, k1) : cache_one_unchecked;
    var kr = backr;
    var kg = backg;
    var kb = backb;
    if (twoside == 0) {
        // One-sided: the material color derives from static light
        // state on this path only -> polyvariant division.
        make_static(kr, kg, kb);
        kr = lr;
        kg = lg;
        kb = lb;
    }
    for (v = 0; v < n; v = v + 1) {
        var nz = verts[v * 4 + 2];
        var d = verts[v * 4 + 3];
        // Distance attenuation, as in Mesa.  With the usual light state
        // (k0 = 1, k1 = 0) the staged dynamic zero/copy propagation
        // cascades: k1*d -> 0, k0+0 -> 1.0, 1.0/1.0 -> 1.0, and every
        // multiplication by the attenuation folds away - deleting the
        // FP divide from the emitted per-vertex code entirely.
        var atten = 1.0 / (k0 + k1 * d);
        var inten = (amb + nz * 0.5) * atten;
        colors[v * 3] = kr * inten;
        colors[v * 3 + 1] = kg * inten;
        colors[v * 3 + 2] = kb * inten;
    }
    return 0;
}

// Per-frame vertex animation (statically compiled driver work).
func animate(verts, n, phase) {
    for (v = 0; v < n; v = v + 1) {
        var z = verts[v * 4 + 2];
        verts[v * 4 + 2] = z + 0.01 * phase - 0.005;
    }
    return 0;
}

func main(m, verts, n, out, clipflags, colors, frames) {
    var check = 0.0;
    for (f = 0; f < frames; f = f + 1) {
        animate(verts, n, f % 3);
        project_and_clip(m, verts, n, out, clipflags);
        var twoside = 0;
        if (f % 4 == 3) { twoside = 1; }
        shade(out, n, colors, 1.0, 1.0, 0.8, 0.2, 1.0, 0.0, twoside,
              0.3, 0.3, 0.3);
        check = check + colors[0] + clipflags[0];
    }
    print_val(check);
    return 0;
}
"""


def _setup(mem: Memory) -> WorkloadInput:
    verts = mem.alloc_array(vertex_stream(VERTICES))
    m = mem.alloc_array(PROJECTION)
    out = mem.alloc(VERTICES * 4, fill=0.0)
    clipflags = mem.alloc(VERTICES, fill=0)
    colors = mem.alloc(VERTICES * 3, fill=0.0)
    args = [m, verts, VERTICES, out, clipflags, colors, FRAMES]

    def checksum(memory: Memory, machine) -> tuple:
        return tuple(
            round(v, 6) if isinstance(v, float) else v
            for v in machine.output
        )

    return WorkloadInput(args=args, checksum=checksum)


VIEWPERF = Workload(
    name="viewperf",
    kind="application",
    description="renderer",
    static_vars="3D projection matrix, lighting vars",
    static_values="perspective matrix, one light source",
    source=SOURCE,
    entry="main",
    region_functions=("project_and_clip", "shade"),
    setup=_setup,
    breakeven_unit="invocations",
    units_per_invocation=1.0,
    notes=(
        f"{FRAMES} frames of {VERTICES} vertices; every fourth frame "
        "uses two-sided lighting, exercising the shader's second "
        "division."
    ),
)
