"""Shared helpers for the test suite."""

from __future__ import annotations

from repro.ir import Function, FunctionBuilder, Memory, Module, Op
from repro.machine import Machine


def run_function(function: Function, *args, memory: Memory | None = None,
                 module: Module | None = None):
    """Execute a lone function on a fresh machine; return (result, machine)."""
    if module is None:
        module = Module()
    if function.name not in module.functions:
        module.add_function(function)
    machine = Machine(module, memory=memory)
    result = machine.run(function.name, *args)
    return result, machine


def build_countdown(n_param: str = "n") -> Function:
    """``f(n): s=0; while n>0: s+=n; n-=1; return s`` — a loop fixture."""
    b = FunctionBuilder("countdown", (n_param,))
    b.move("s", 0)
    b.jump("head")
    b.label("head")
    b.binop("c", Op.GT, n_param, 0)
    b.branch("c", "body", "done")
    b.label("body")
    b.binop("s", Op.ADD, "s", n_param)
    b.binop(n_param, Op.SUB, n_param, 1)
    b.jump("head")
    b.label("done")
    b.ret("s")
    return b.finish()


def build_diamond() -> Function:
    """``f(x): if x then y=1 else y=2; return y+x`` — a branch fixture."""
    b = FunctionBuilder("diamond", ("x",))
    b.branch("x", "then", "else")
    b.label("then")
    b.move("y", 1)
    b.jump("join")
    b.label("else")
    b.move("y", 2)
    b.jump("join")
    b.label("join")
    b.binop("r", Op.ADD, "y", "x")
    b.ret("r")
    return b.finish()
