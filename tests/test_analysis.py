"""Tests for CFG analyses (orders, dominators, loops) and liveness."""

from repro.analysis import (
    back_edges,
    dominator_sets,
    immediate_dominators,
    liveness,
    loop_body_map,
    natural_loops,
    reverse_postorder,
)
from repro.ir import FunctionBuilder, Op
from tests.helpers import build_countdown, build_diamond


class TestOrders:
    def test_rpo_starts_at_entry(self):
        f = build_diamond()
        rpo = reverse_postorder(f)
        assert rpo[0] == "entry"
        assert set(rpo) == set(f.blocks)

    def test_rpo_places_join_after_branches(self):
        rpo = reverse_postorder(build_diamond())
        assert rpo.index("join") > rpo.index("then")
        assert rpo.index("join") > rpo.index("else")

    def test_rpo_handles_loops(self):
        rpo = reverse_postorder(build_countdown())
        assert rpo.index("entry") < rpo.index("head")
        assert rpo.index("head") < rpo.index("body")


class TestDominators:
    def test_entry_dominates_all(self):
        f = build_diamond()
        doms = dominator_sets(f)
        for label in f.blocks:
            assert "entry" in doms[label]

    def test_branch_arms_do_not_dominate_join(self):
        doms = dominator_sets(build_diamond())
        assert "then" not in doms["join"]
        assert "else" not in doms["join"]

    def test_idom_of_entry_is_none(self):
        idom = immediate_dominators(build_diamond())
        assert idom["entry"] is None
        assert idom["join"] == "entry"

    def test_loop_header_dominates_body(self):
        doms = dominator_sets(build_countdown())
        assert "head" in doms["body"]


class TestLoops:
    def test_countdown_has_one_back_edge(self):
        assert back_edges(build_countdown()) == [("body", "head")]

    def test_natural_loop_membership(self):
        loops = natural_loops(build_countdown())
        assert len(loops) == 1
        assert loops[0].header == "head"
        assert loops[0].body == {"head", "body"}

    def test_diamond_has_no_loops(self):
        assert natural_loops(build_diamond()) == []

    def test_nested_loops(self):
        b = FunctionBuilder("nested", ("n",))
        b.move("i", 0)
        b.jump("oh")
        b.label("oh")
        b.binop("c1", Op.LT, "i", "n")
        b.branch("c1", "ob", "done")
        b.label("ob")
        b.move("j", 0)
        b.jump("ih")
        b.label("ih")
        b.binop("c2", Op.LT, "j", "n")
        b.branch("c2", "ib", "olatch")
        b.label("ib")
        b.binop("j", Op.ADD, "j", 1)
        b.jump("ih")
        b.label("olatch")
        b.binop("i", Op.ADD, "i", 1)
        b.jump("oh")
        b.label("done")
        b.ret("i")
        f = b.finish()
        loops = {loop.header: loop for loop in natural_loops(f)}
        assert set(loops) == {"oh", "ih"}
        assert "ih" in loops["oh"].body  # inner nested inside outer
        assert "oh" not in loops["ih"].body
        membership = loop_body_map(f)
        assert membership["ib"] == {"oh", "ih"}
        assert membership["done"] == set()


class TestLiveness:
    def test_param_live_through_loop(self):
        f = build_countdown()
        result = liveness(f)
        assert "n" in result.live_in["head"]
        assert "s" in result.live_in["head"]
        assert result.live_in["done"] == frozenset({"s"})

    def test_dead_after_last_use(self):
        f = build_diamond()
        result = liveness(f)
        # After computing r, nothing is live.
        assert result.live_out["join"] == frozenset()
        assert "y" in result.live_in["join"]

    def test_live_before_point_query(self):
        f = build_diamond()
        result = liveness(f)
        live = result.live_before(f, "join", 1)  # before the Return
        assert "r" in live
        assert "y" not in live

    def test_unused_definition_not_live(self):
        b = FunctionBuilder("f", ("a",))
        b.move("unused", 42)
        b.ret("a")
        f = b.finish()
        result = liveness(f)
        assert "unused" not in result.live_in["entry"]
