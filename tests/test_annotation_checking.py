"""Tests for the annotation-checking debug mode.

``@`` loads and ``cache_one_unchecked`` are unsafe programmer assertions
(§2.2.6, §4.4.3).  ``OptConfig(check_annotations=True)`` arms the
checking machinery: asserted-invariant addresses are watched for stores,
and unchecked dispatches with changed keys raise instead of reusing
stale code.
"""

import pytest

from repro.config import OptConfig
from repro.dyc import compile_annotated
from repro.errors import CacheError
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import Machine

CHECKED = OptConfig(check_annotations=True)


class TestStaticLoadWatching:
    SRC = """
    func f(p, x) {
        make_static(p);
        var w = p@[0];
        return w * x;
    }
    func mutate(p) {
        p[0] = 99;
        return 0;
    }
    func main(p, x) {
        var a = f(p, x);
        mutate(p);
        var b = f(p, x);
        return a + b;
    }
    """

    def test_watched_address_recorded(self):
        module = compile_source(self.SRC)
        compiled = compile_annotated(module, CHECKED)
        mem = Memory()
        p = mem.alloc_array([7])
        machine, _ = compiled.make_machine(memory=mem)
        machine.run("main", p, 2)
        # The store through mutate() hit an asserted-invariant address.
        assert mem.watch_violations == [p]

    def test_no_violation_without_mutation(self):
        src = """
        func f(p, x) {
            make_static(p);
            return p@[0] * x;
        }
        """
        module = compile_source(src)
        compiled = compile_annotated(module, CHECKED)
        mem = Memory()
        p = mem.alloc_array([7])
        machine, _ = compiled.make_machine(memory=mem)
        machine.run("f", p, 2)
        machine.run("f", p, 3)
        assert mem.watch_violations == []

    def test_unwatched_without_checking(self):
        module = compile_source(self.SRC)
        compiled = compile_annotated(module)  # checking off
        mem = Memory()
        p = mem.alloc_array([7])
        machine, _ = compiled.make_machine(memory=mem)
        machine.run("main", p, 2)
        assert mem.watch_violations == []

    def test_stale_value_demonstrated(self):
        # Without checking, the unsafe assertion silently uses stale
        # data: b still sees the old p[0] (folded at specialize time).
        module = compile_source(self.SRC)
        compiled = compile_annotated(module)
        mem = Memory()
        p = mem.alloc_array([7])
        machine, _ = compiled.make_machine(memory=mem)
        result = machine.run("main", p, 2)
        assert result == 14 + 14  # second call reused w == 7


class TestUncheckedDispatchChecking:
    SRC = """
    func f(x, n) {
        make_static(n) : cache_one_unchecked;
        return x * n;
    }
    """

    def test_checked_mode_catches_key_change(self):
        compiled = compile_annotated(compile_source(self.SRC), CHECKED)
        machine, _ = compiled.make_machine()
        assert machine.run("f", 2, 3) == 6
        assert machine.run("f", 5, 3) == 15      # same key: fine
        with pytest.raises(CacheError, match="unsafe"):
            machine.run("f", 2, 4)

    def test_unchecked_mode_reuses_silently(self):
        compiled = compile_annotated(compile_source(self.SRC))
        machine, _ = compiled.make_machine()
        assert machine.run("f", 2, 3) == 6
        assert machine.run("f", 2, 4) == 6       # stale but silent
