"""Tests for the §6 extension: profile-driven automatic annotation."""

import pytest

from repro.autoannotate import (
    ValueProfiler,
    annotate_module,
    suggest_annotations,
)
from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import Machine

#: An *unannotated* dot-product program whose driver holds the vector
#: and length fixed while the other operand varies — the exact pattern
#: value profiling is supposed to discover.
SRC = """
func dot(v, w, n) {
    var s = 0.0;
    for (i = 0; i < n; i = i + 1) {
        s = s + v[i] * w[i];
    }
    return s;
}

func cold(x) {
    return x + 1;
}

func main(v, ws, n, reps) {
    var check = 0.0;
    for (r = 0; r < reps; r = r + 1) {
        check = check + dot(v, ws + (r % 4) * n, n);
    }
    check = check + cold(1);
    return check;
}
"""


def profiled_run():
    module = compile_source(SRC)
    mem = Memory()
    v = mem.alloc_array([0.0, 1.0, 0.0, 2.0, 0.0, 1.0, 0.0, 0.0])
    ws = mem.alloc_array([float(i % 7) for i in range(32)])
    machine = Machine(compile_static(module), memory=mem)
    profiler = ValueProfiler(module)
    machine.profiler = profiler
    result = machine.run("main", v, ws, 8, 20)
    return module, profiler, result, (v, ws)


class TestValueProfiler:
    def test_call_counts(self):
        _, profiler, _, _ = profiled_run()
        assert profiler.functions["dot"].calls == 20
        assert profiler.functions["cold"].calls == 1
        assert profiler.functions["main"].calls == 1

    def test_parameter_distributions(self):
        _, profiler, _, _ = profiled_run()
        dot = profiler.functions["dot"]
        assert dot.param_profiles["v"].distinct == 1       # invariant
        assert dot.param_profiles["n"].distinct == 1       # invariant
        assert dot.param_profiles["w"].distinct == 4       # rotates
        assert dot.param_profiles["v"].invariance == 1.0

    def test_hotness_ordering(self):
        _, profiler, _, _ = profiled_run()
        hottest = profiler.hottest(3)
        assert hottest[0].name == "main"      # inclusive cycles
        assert hottest[1].name == "dot"
        assert profiler.functions["dot"].inclusive_cycles > \
            profiler.functions["cold"].inclusive_cycles

    def test_overflow_cap(self):
        module = compile_source("func g(x) { return x; }")
        machine = Machine(module)
        profiler = ValueProfiler(module, max_tracked_values=8)
        machine.profiler = profiler
        for value in range(50):
            machine.run("g", value)
        pp = profiler.functions["g"].param_profiles["x"]
        assert pp.overflowed
        assert pp.invariance == 0.0


class TestSuggestions:
    def test_discovers_the_manual_annotation(self):
        module, profiler, _, _ = profiled_run()
        suggestions = suggest_annotations(profiler, module)
        by_name = {s.function: s for s in suggestions}
        assert "dot" in by_name
        dot = by_name["dot"]
        # The paper's manual annotation for dotproduct: v, n, and the
        # loop index (Table 1 / our workload source).
        assert set(dot.params) == {"v", "n"}
        assert dot.induction_vars == ("i",)
        assert dot.policy == "cache_one_unchecked"  # single value each
        assert "w" not in dot.params               # varies: not static
        assert dot.annotation_source() == \
            "make_static(v, n, i) : cache_one_unchecked;"

    def test_cold_functions_excluded(self):
        module, profiler, _, _ = profiled_run()
        suggestions = suggest_annotations(profiler, module)
        assert all(s.function != "cold" for s in suggestions)

    def test_rationale_is_informative(self):
        module, profiler, _, _ = profiled_run()
        [dot] = [s for s in suggest_annotations(profiler, module)
                 if s.function == "dot"]
        assert "quasi-invariant" in dot.rationale
        assert "unroll" in dot.rationale

    def test_byte_range_parameter_gets_indexed_policy(self):
        src = """
        func classify(table, c) {
            return table[c];
        }
        func main(table, input, n) {
            var s = 0;
            for (i = 0; i < n; i = i + 1) {
                s = s + classify(table, input[i]);
            }
            return s;
        }
        """
        module = compile_source(src)
        mem = Memory()
        table = mem.alloc_array(list(range(100, 120)))
        codes = mem.alloc_array([i % 20 for i in range(60)])
        machine = Machine(compile_static(module), memory=mem)
        profiler = ValueProfiler(module)
        machine.profiler = profiler
        machine.run("main", table, codes, 60)
        [s] = [x for x in suggest_annotations(profiler, module)
               if x.function == "classify"]
        assert s.policy == "cache_indexed"


class TestEndToEnd:
    def test_suggested_annotation_produces_speedup(self):
        module, profiler, expected, (v, ws) = profiled_run()
        suggestions = [
            s for s in suggest_annotations(profiler, module)
            if s.function == "dot"
        ]
        annotated = annotate_module(module, suggestions,
                                    static_loads=True)

        mem = Memory()
        v2 = mem.alloc_array([0.0, 1.0, 0.0, 2.0, 0.0, 1.0, 0.0, 0.0])
        ws2 = mem.alloc_array([float(i % 7) for i in range(32)])
        compiled = compile_annotated(annotated)
        machine, runtime = compiled.make_machine(memory=mem)
        actual = machine.run("main", v2, ws2, 8, 20)
        assert actual == expected

        # And it is *faster* than the unannotated static program once
        # compilation amortizes: compare steady-state dot cycles.
        static_machine = Machine(compile_static(module),
                                 tracked={"dot"})
        static_machine.memory = mem
        static_machine.run("main", v2, ws2, 8, 20)
        dyn_machine, _ = compiled.make_machine(memory=mem,
                                               tracked={"dot"})
        dyn_machine.run("main", v2, ws2, 8, 20)
        assert (dyn_machine.stats.scope_cycles["dot"]
                < static_machine.stats.scope_cycles["dot"])

    def test_annotate_module_leaves_original_untouched(self):
        module, profiler, _, _ = profiled_run()
        suggestions = suggest_annotations(profiler, module)
        annotated = annotate_module(module, suggestions)
        from repro.ir import MakeStatic
        original_has = any(
            isinstance(i, MakeStatic)
            for _, _, i in module.function("dot").instructions()
        )
        annotated_has = any(
            isinstance(i, MakeStatic)
            for _, _, i in annotated.function("dot").instructions()
        )
        assert not original_has and annotated_has
