"""The BENCH_interp.json schema-2 report: four-column layout, counted
stats checksums, geomean summary, and the --compare diff used by CI to
assert the committed report still describes this tree."""

import copy
import json

import pytest

from repro.evalharness.bench import (
    BENCH_COLUMNS,
    COUNTED_COLUMNS,
    SPEEDUP_COLUMNS,
    compare_reports,
    load_bench,
    run_bench,
    write_bench,
)
from repro.workloads import WORKLOADS_BY_NAME


@pytest.fixture(scope="module")
def report():
    workloads = [WORKLOADS_BY_NAME["dotproduct"],
                 WORKLOADS_BY_NAME["dinero"]]
    return run_bench(workloads=workloads, repeat=1)


class TestSchema:
    def test_layout(self, report):
        assert report["schema"] == 2
        assert report["columns"] == [n for n, _, _ in BENCH_COLUMNS]
        assert set(report["workloads"]) == {"dotproduct", "dinero"}
        for entry in report["workloads"].values():
            for name, _, _ in BENCH_COLUMNS:
                assert entry[f"{name}_seconds"] > 0
            for name in SPEEDUP_COLUMNS:
                assert entry[f"{name}_speedup"] > 0

    def test_counted_columns_checksum_identical(self, report):
        checksums = {
            report["backends"][c]["stats_checksum"]
            for c in COUNTED_COLUMNS
        }
        assert len(checksums) == 1
        assert report["checksums_match"]

    def test_fast_column_results_match(self, report):
        results = {
            report["backends"][c]["results_checksum"]
            for c in report["columns"]
        }
        assert len(results) == 1
        assert report["results_match"]
        # The fast column carries no counted statistics.
        assert "stats_checksum" not in report["backends"]["pycodegen"]

    def test_geomean_summary(self, report):
        assert set(report["geomean"]) == set(SPEEDUP_COLUMNS)
        for value in report["geomean"].values():
            assert value > 0

    def test_round_trips_through_json(self, report, tmp_path):
        path = tmp_path / "bench.json"
        write_bench(report, str(path))
        loaded = load_bench(str(path))
        assert loaded == json.loads(json.dumps(report))


class TestCompare:
    def test_identical_reports_agree(self, report):
        lines, ok = compare_reports(report, copy.deepcopy(report))
        assert ok
        assert lines == ["reports agree"]

    def test_stats_checksum_drift_fails(self, report):
        tampered = copy.deepcopy(report)
        tampered["backends"]["threaded"]["stats_checksum"] = "0" * 64
        lines, ok = compare_reports(tampered, report)
        assert not ok
        assert any("stats_checksum" in line for line in lines)

    def test_schema_mismatch_fails(self, report):
        old = copy.deepcopy(report)
        old["schema"] = 1
        lines, ok = compare_reports(old, report)
        assert not ok
        assert any("schema" in line for line in lines)

    def test_workload_set_drift_fails(self, report):
        shrunk = copy.deepcopy(report)
        del shrunk["workloads"]["dinero"]
        lines, ok = compare_reports(shrunk, report)
        assert not ok
        assert any("dinero" in line for line in lines)

    def test_wall_clock_drift_is_informational(self, report):
        drifted = copy.deepcopy(report)
        for column in SPEEDUP_COLUMNS:
            drifted["geomean"][column] = \
                round(drifted["geomean"][column] * 2, 3)
        lines, ok = compare_reports(report, drifted)
        assert ok
        assert any("informational" in line for line in lines)

    def test_internal_divergence_in_fresh_run_fails(self, report):
        broken = copy.deepcopy(report)
        broken["checksums_match"] = False
        lines, ok = compare_reports(report, broken)
        assert not ok
