"""Tests for the binding-time analysis."""

import pytest

from repro.bta import (
    analyze_function,
    collect_annotations,
    split_at_annotations,
)
from repro.bta.facts import InstrClass
from repro.dyc.config import ALL_ON, OptConfig
from repro.errors import BTAError
from repro.frontend import compile_source
from repro.ir import MakeStatic


def analyze(source: str, func: str = "f", config: OptConfig = ALL_ON):
    module = compile_source(source)
    function = module.function(func)
    regions = analyze_function(function, config, module=module)
    return function, regions


def classes_of(region, label):
    """Classifications for a block's single context (any division)."""
    for (block, _division), facts in region.contexts.items():
        if block == label:
            return facts.classes
    raise AssertionError(f"no context for block {label}")


class TestSplitting:
    def test_mid_block_annotation_moved_to_block_start(self):
        module = compile_source(
            "func f(x) { var y = x + 1; make_static(x); return x + y; }"
        )
        function = module.function("f")
        split_at_annotations(function)
        sites = collect_annotations(function)
        assert len(sites) == 1
        block = function.blocks[sites[0].block]
        assert isinstance(block.instrs[0], MakeStatic)

    def test_block_initial_annotation_untouched(self):
        module = compile_source(
            "func f(x) { make_static(x); return x; }"
        )
        function = module.function("f")
        count_before = len(function.blocks)
        split_at_annotations(function)
        assert len(function.blocks) == count_before


class TestBasicClassification:
    def test_derived_static_computation(self):
        src = "func f(x, n) { make_static(n); var y = n * 2; return x + y; }"
        function, regions = analyze(src)
        assert len(regions) == 1
        region = regions[0]
        assert region.entry_keys == ("n",)
        classes = classes_of(region, region.entry_block)
        assert classes[0] is InstrClass.ANNOTATION
        assert InstrClass.STATIC in classes       # y = n * 2
        assert InstrClass.DYNAMIC in classes      # x + y, return

    def test_no_annotations_no_regions(self):
        _, regions = analyze("func f(x) { return x; }")
        assert regions == []

    def test_constant_is_static(self):
        src = "func f(x, n) { make_static(n); var k = 7; return x + k * n; }"
        _, regions = analyze(src)
        classes = classes_of(regions[0], regions[0].entry_block)
        # k = 7 is a derived static (constant), k * n static as well.
        assert classes.count(InstrClass.STATIC) >= 2

    def test_dynamic_operand_makes_dynamic(self):
        src = "func f(x, n) { make_static(n); return x * n; }"
        _, regions = analyze(src)
        classes = classes_of(regions[0], regions[0].entry_block)
        assert InstrClass.DYNAMIC in classes

    def test_make_dynamic_demotes(self):
        src = """
        func f(x, n) {
            make_static(n);
            var a = n + 1;
            make_dynamic(n);
            var b = n + 2;
            return a + b + x;
        }
        """
        _, regions = analyze(src)
        region = regions[0]
        classes = classes_of(region, region.entry_block)
        statics = [
            i for i, c in enumerate(classes) if c is InstrClass.STATIC
        ]
        dynamics = [
            i for i, c in enumerate(classes) if c is InstrClass.DYNAMIC
        ]
        assert statics and dynamics
        assert min(statics) < min(dynamics)


class TestStaticLoadsAndCalls:
    SRC_LOAD = """
    func f(p, x) {
        make_static(p);
        var w = p@[2];
        return x * w;
    }
    """

    def test_static_load_classified(self):
        _, regions = analyze(self.SRC_LOAD)
        classes = classes_of(regions[0], regions[0].entry_block)
        assert InstrClass.STATIC_LOAD in classes

    def test_static_loads_ablation(self):
        _, regions = analyze(
            self.SRC_LOAD, config=ALL_ON.without("static_loads")
        )
        classes = classes_of(regions[0], regions[0].entry_block)
        assert InstrClass.STATIC_LOAD not in classes

    def test_unannotated_load_is_dynamic(self):
        src = """
        func f(p, x) {
            make_static(p);
            var w = p[2];
            return x * w;
        }
        """
        _, regions = analyze(src)
        classes = classes_of(regions[0], regions[0].entry_block)
        assert InstrClass.STATIC_LOAD not in classes

    SRC_CALL = """
    func f(n, x) {
        make_static(n);
        var c = cos(n * 1.0);
        return x * c;
    }
    """

    def test_static_call_classified(self):
        _, regions = analyze(self.SRC_CALL)
        classes = classes_of(regions[0], regions[0].entry_block)
        assert InstrClass.STATIC_CALL in classes

    def test_static_calls_ablation(self):
        _, regions = analyze(
            self.SRC_CALL, config=ALL_ON.without("static_calls")
        )
        classes = classes_of(regions[0], regions[0].entry_block)
        assert InstrClass.STATIC_CALL not in classes

    def test_call_with_dynamic_arg_is_dynamic(self):
        src = "func f(n, x) { make_static(n); return cos(x); }"
        _, regions = analyze(src)
        classes = classes_of(regions[0], regions[0].entry_block)
        assert InstrClass.STATIC_CALL not in classes


class TestLoopsAndUnrolling:
    SRC_LOOP = """
    func f(n, x) {
        make_static(n, i, s);
        var s = 0;
        for (i = 0; i < n; i = i + 1) { s = s + i; }
        return x + s;
    }
    """

    def test_static_loop_fully_static(self):
        function, regions = analyze(self.SRC_LOOP)
        region = regions[0]
        # The loop-head branch tests a static condition in some context.
        found_static_branch = any(
            InstrClass.STATIC_BRANCH in facts.classes
            for facts in region.contexts.values()
        )
        assert found_static_branch

    def test_unrolling_ablation_demotes_induction_vars(self):
        _, regions = analyze(
            self.SRC_LOOP, config=ALL_ON.without("complete_loop_unrolling")
        )
        region = regions[0]
        # With unrolling disabled, the loop head must test a dynamic
        # condition (i is loop-variant, hence demoted).
        for (label, _), facts in region.contexts.items():
            assert InstrClass.STATIC_BRANCH not in facts.classes

    def test_loop_invariant_stays_static_without_unrolling(self):
        src = """
        func f(n, arr, len) {
            make_static(n);
            var s = 0;
            var i = 0;
            while (i < len) { s = s + arr[i] * n; i = i + 1; }
            return s;
        }
        """
        _, regions = analyze(
            src, config=ALL_ON.without("complete_loop_unrolling")
        )
        region = regions[0]
        # n is never assigned in the loop, so it remains static everywhere.
        assert all(
            "n" in facts.static_in or label == region.entry_block
            for (label, _), facts in region.contexts.items()
        )


class TestPromotions:
    def test_entry_promotion_recorded(self):
        src = "func f(x, n) { make_static(n); return x * n; }"
        _, regions = analyze(src)
        region = regions[0]
        kinds = [p.kind for p in region.promotions.values()]
        assert "entry" in kinds

    def test_assignment_promotion(self):
        src = """
        func f(x, n) {
            make_static(n);
            var a = x + 1;
            n = a;
            return x * n;
        }
        """
        _, regions = analyze(src)
        region = regions[0]
        kinds = {p.kind for p in region.promotions.values()}
        assert "assignment" in kinds

    def test_assignment_demotes_without_internal_promotions(self):
        src = """
        func f(x, n) {
            make_static(n);
            var a = x + 1;
            n = a;
            return x * n;
        }
        """
        _, regions = analyze(
            src, config=ALL_ON.without("internal_promotions")
        )
        region = regions[0]
        kinds = {p.kind for p in region.promotions.values()}
        assert "assignment" not in kinds

    def test_policy_recorded(self):
        src = """
        func f(x, n) {
            make_static(n) : cache_one_unchecked;
            return x * n;
        }
        """
        _, regions = analyze(src)
        region = regions[0]
        assert region.entry_policy == "cache_one_unchecked"
        assert region.policies["n"] == "cache_one_unchecked"


class TestPolyvariantDivision:
    SRC = """
    func f(x, n, v) {
        make_static(n);
        if (x > 0) {
            make_static(v);
        }
        var r = v * n;
        return r + x;
    }
    """

    def test_division_split_at_join(self):
        _, regions = analyze(self.SRC)
        region = regions[0]
        # The join block (v*3) is analyzed under two divisions.
        assert region.division_count >= 2

    def test_division_merge_when_disabled(self):
        _, regions = analyze(
            self.SRC, config=ALL_ON.without("polyvariant_division")
        )
        region = regions[0]
        labels = [label for (label, _) in region.contexts]
        assert len(labels) == len(set(labels))  # one context per block


class TestRegionExtent:
    def test_region_ends_after_last_static_use(self):
        src = """
        func f(x, n) {
            make_static(n);
            var y = n * x;
            var z = y + 1;
            var w = z * 2;
            return w;
        }
        """
        function, regions = analyze(src)
        region = regions[0]
        # Blocks after the last use of n are not region members; the exit
        # edge leaves the region.
        assert region.blocks  # non-empty

    def test_multiple_regions_in_one_function(self):
        src = """
        func f(a, b, x) {
            make_static(a);
            var r1 = a * x;
            x = r1 + x;
            make_dynamic(a);
            make_static(b);
            var r2 = b * x;
            return r2;
        }
        """
        function, regions = analyze(src)
        assert len(regions) >= 1  # at least the first region
        # All regions have distinct entries.
        entries = [r.entry_block for r in regions]
        assert len(entries) == len(set(entries))

    def test_region_template_snapshot_attached(self):
        src = "func f(x, n) { make_static(n); return x * n; }"
        function, regions = analyze(src)
        assert regions[0].template is not None
        assert regions[0].entry_block in regions[0].template.blocks
