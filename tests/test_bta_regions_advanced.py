"""Advanced BTA/region shapes: multiple exits, in-region returns,
division merging, and host-rewrite integrity."""

import pytest

from repro.config import ALL_ON
from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import EnterRegion, Memory, verify_function
from repro.machine import Machine


def run_pair(src, fn, *args, memory_builder=None):
    module = compile_source(src)
    mem_s = Memory()
    extra_s = memory_builder(mem_s) if memory_builder else ()
    static_machine = Machine(compile_static(module), memory=mem_s)
    expected = static_machine.run(fn, *args, *extra_s)

    compiled = compile_annotated(module, ALL_ON)
    mem_d = Memory()
    extra_d = memory_builder(mem_d) if memory_builder else ()
    machine, runtime = compiled.make_machine(memory=mem_d)
    actual = machine.run(fn, *args, *extra_d)
    return expected, actual, compiled, runtime


class TestMultipleExits:
    SRC = """
    func f(x, n) {
        make_static(n);
        var y = n * 2;
        if (x > y) {
            var a = x - y;
            return a * 10;
        }
        var b = x + y;
        return b + 1;
    }
    """

    def test_both_exits_correct(self):
        for x in (100, 1):
            expected, actual, _, _ = run_pair(self.SRC, "f", x, 3)
            assert actual == expected

    def test_region_returns_directly(self):
        # Returns inside the region are emitted as host-level returns.
        expected, actual, compiled, _ = run_pair(self.SRC, "f", 100, 3)
        assert actual == expected == 940


class TestHostRewrite:
    def test_enter_region_in_host(self):
        src = "func f(x, n) { make_static(n); return x + n * n; }"
        module = compile_source(src)
        compiled = compile_annotated(module)
        host = compiled.module.function("f")
        dispatches = [
            i for _, _, i in host.instructions()
            if isinstance(i, EnterRegion)
        ]
        assert len(dispatches) == 1
        assert dispatches[0].keys == ("n",)
        verify_function(host)

    def test_host_keeps_bypass_path(self):
        # Conditional annotation: the unannotated path's blocks must
        # survive the rewrite.
        src = """
        func f(x, n) {
            if (n < 10) { make_static(n); }
            return x * n;
        }
        """
        module = compile_source(src)
        compiled = compile_annotated(module)
        host = compiled.module.function("f")
        verify_function(host)
        machine, _ = compiled.make_machine()
        assert machine.run("f", 3, 4) == 12    # specialized path
        assert machine.run("f", 3, 40) == 120  # bypass path

    def test_exits_listed_on_dispatch(self):
        src = """
        func f(x, n) {
            make_static(n);
            var y = x * n;
            var z = y + x;
            return z;
        }
        """
        module = compile_source(src)
        compiled = compile_annotated(module)
        region = compiled.regions[0]
        host = compiled.module.function("f")
        dispatch = next(
            i for _, _, i in host.instructions()
            if isinstance(i, EnterRegion)
        )
        assert dispatch.exits == region.exits
        for exit_label in dispatch.exits:
            assert exit_label in host.blocks


class TestMakeDynamicRegions:
    def test_two_sequential_regions(self):
        src = """
        func f(x, a, b) {
            make_static(a);
            var r1 = a * x;
            make_dynamic(a);
            x = r1 + x;
            make_static(b);
            var r2 = b * x;
            return r2 + r1;
        }
        """
        expected, actual, compiled, runtime = run_pair(
            src, "f", 5, 3, 4
        )
        assert actual == expected
        # Two independent regions, each dispatched once.
        assert len(compiled.regions) == 2
        assert all(
            stats.dispatches == 1
            for stats in runtime.stats.regions.values()
        )

    def test_region_ids_unique_across_functions(self):
        src = """
        func g(y, m) { make_static(m); return y * m; }
        func h(y, m) { make_static(m); return y + m; }
        func f(x) { return g(x, 2) + h(x, 3); }
        """
        module = compile_source(src)
        compiled = compile_annotated(module)
        assert sorted(compiled.regions) == [0, 1]
        machine, _ = compiled.make_machine()
        assert machine.run("f", 10) == 20 + 13


class TestStaticBranchExits:
    def test_statically_chosen_exit(self):
        # A static branch picks the exit at specialize time; only one
        # arm is ever emitted.
        src = """
        func f(x, n) {
            make_static(n);
            if (n > 5) {
                return x + 1;
            }
            return x - 1;
        }
        """
        module = compile_source(src)
        compiled = compile_annotated(module)
        machine, runtime = compiled.make_machine()
        assert machine.run("f", 10, 9) == 11
        assert machine.run("f", 10, 2) == 9
        stats = runtime.stats.regions[0]
        assert stats.specializations == 2
        assert stats.static_branches_folded >= 2
