"""Multi-threaded stress tests for the bounded, locked ``CodeCache``.

The serve daemon shares shard caches between the event-loop thread
(lookups) and executor worker threads (insertions); these tests hammer
a ``lock=True`` cache from many threads and assert the invariants that
sharing relies on:

* the live-entry count never exceeds ``capacity``;
* a lookup never observes a half-applied eviction (every hit returns
  the exact value inserted for that key);
* with ``cache.corrupt`` injection armed, corrupt entries are detected,
  deleted, and counted — never served;
* counters stay internally consistent after the storm.

The *other* caches — the per-runtime promotion and cache-all tables —
are deliberately not locked: they rely on the thread-confinement
invariant documented on :class:`~repro.runtime.cache.CodeCache` (one
runtime, one run, one thread), which
``test_runs_are_thread_confined`` exercises by running whole workloads
concurrently.
"""

import threading

from repro.evalharness.runner import run_workload
from repro.faults import FaultRegistry
from repro.runtime.cache import CodeCache, entry_checksum
from repro.serve.cache import ShardedResultCache
from repro.serve.protocol import run_fingerprint
from repro.workloads import WORKLOADS_BY_NAME

THREADS = 8
OPS_PER_THREAD = 400
CAPACITY = 32


def _hammer(cache: CodeCache, thread_id: int, errors: list) -> None:
    try:
        for i in range(OPS_PER_THREAD):
            key = (thread_id, i % 48)
            found = cache.lookup(key)
            if found.hit and found.value != f"v-{thread_id}-{i % 48}":
                errors.append(
                    f"thread {thread_id}: key {key} returned "
                    f"{found.value!r}")
            cache.insert(key, f"v-{thread_id}-{i % 48}")
            if len(cache) > CAPACITY:
                errors.append(
                    f"thread {thread_id}: {len(cache)} live entries "
                    f"exceed capacity {CAPACITY}")
    except Exception as exc:  # noqa: BLE001 - recorded for the assert
        errors.append(f"thread {thread_id}: {type(exc).__name__}: {exc}")


class TestLockedCodeCacheUnderThreads:
    def _storm(self, cache: CodeCache) -> list:
        errors: list = []
        threads = [
            threading.Thread(target=_hammer, args=(cache, t, errors))
            for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return errors

    def test_bounded_locked_cache_stays_consistent(self):
        cache = CodeCache(capacity=CAPACITY, checksum=entry_checksum,
                          lock=True)
        errors = self._storm(cache)
        assert errors == []
        assert len(cache) <= CAPACITY
        assert cache.evictions > 0
        # Every surviving entry is still readable and correct.
        for key, value in list(cache.items()):
            thread_id, slot = key
            assert value == f"v-{thread_id}-{slot}"

    def test_corrupt_injection_under_threads(self):
        corrupted = []
        cache = CodeCache(
            capacity=CAPACITY,
            checksum=entry_checksum,
            faults=FaultRegistry.from_spec("cache.corrupt:every=25"),
            on_corrupt=lambda: corrupted.append(1),
            lock=True,
        )
        errors = self._storm(cache)
        # No wrong values were ever served (corrupt hits report a miss
        # and delete the entry) and the detections were counted.
        assert errors == []
        assert cache.corrupt_hits > 0
        assert len(corrupted) == cache.corrupt_hits
        assert len(cache) <= CAPACITY

    def test_sharded_result_cache_concurrent_puts(self):
        cache = ShardedResultCache(shards=4, capacity_per_shard=16)
        errors: list = []

        def put_many(thread_id: int) -> None:
            try:
                for i in range(200):
                    cache.put(f"tenant-{thread_id}", f"key-{i}",
                              {"status": 200,
                               "body": {"t": thread_id, "i": i}})
            except Exception as exc:  # noqa: BLE001
                errors.append(f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=put_many, args=(t,))
                   for t in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = cache.stats()
        assert stats["entries"] <= 4 * 16
        # Reads after the storm return exactly what was written.
        for t in range(THREADS):
            for i in range(200):
                value = cache.get(f"tenant-{t}", f"key-{i}")
                if value is not None:
                    assert value["body"] == {"t": t, "i": i}


class TestRunThreadConfinement:
    def test_runs_are_thread_confined(self):
        """Whole runs on parallel threads stay byte-identical.

        This is the invariant the serve executor depends on: each run
        builds a private runtime (caches, fault registry, quarantine
        table), so running N workloads on N threads must produce the
        same fingerprints as running them serially.
        """
        names = ["binary", "dotproduct", "query", "binary"]
        serial = {
            name: run_fingerprint(
                run_workload(WORKLOADS_BY_NAME[name],
                             backend="threaded"))
            for name in set(names)
        }
        results: dict[int, str] = {}
        errors: list = []

        def run_one(index: int, name: str) -> None:
            try:
                result = run_workload(WORKLOADS_BY_NAME[name],
                                      backend="threaded")
                results[index] = run_fingerprint(result)
            except Exception as exc:  # noqa: BLE001
                errors.append(f"{name}: {type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=run_one, args=(i, name))
                   for i, name in enumerate(names)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        for index, name in enumerate(names):
            assert results[index] == serial[name]
