"""Tests for the chaos harness: scheduling, invariants, end-to-end.

``plan_schedule`` is the reproducibility contract — everything a chaos
run does (fault spec, traffic, kill schedule) must be a pure function
of the seed — so most of this module pins that down without spawning
anything.  One deliberately tiny end-to-end run exercises the full
orchestrator (supervised fleet, mid-chunk worker kill, drain burst,
warm replay, offline oracle) in CI-sized form.
"""

import json

from repro.chaos.orchestrator import (
    ALLOWED_ERROR_CODES,
    ALLOWED_STATUSES,
    check_store,
    main,
    merge_leg,
    plan_schedule,
)
from repro.faults import parse_spec
from repro.runtime.persist import PersistStore, digest
from repro.serve.loadgen import LegResult

_PLAN_KNOBS = dict(procs=2, kills=3, chunks=5, chunk_size=10,
                   tenants=2, workloads=("binary", "query"))


class TestPlanSchedule:
    def test_same_seed_is_identical(self):
        assert plan_schedule(42, **_PLAN_KNOBS) == \
               plan_schedule(42, **_PLAN_KNOBS)

    def test_different_seeds_differ(self):
        a = plan_schedule(1, **_PLAN_KNOBS)
        b = plan_schedule(2, **_PLAN_KNOBS)
        assert a != b
        assert a["traffic"] != b["traffic"]

    def test_fault_spec_parses(self):
        # Regression: points are ';'-separated — a ','-joined spec
        # reads as a bogus parameter and crash-loops every worker.
        schedule = plan_schedule(7, **_PLAN_KNOBS)
        registry = parse_spec(schedule["fault_spec"])
        assert set(registry) >= {"serve.respond", "persist.fsync",
                                 "serve.worker_heartbeat"}

    def test_kill_plan_bounds(self):
        schedule = plan_schedule(9, **_PLAN_KNOBS)
        kills = schedule["kills"]
        assert len(kills) == 3
        chunks_hit = [k["during_chunk"] for k in kills]
        assert chunks_hit == sorted(chunks_hit)
        assert len(set(chunks_hit)) == len(chunks_hit)
        for kill in kills:
            # Never before the fleet has served real traffic.
            assert 1 <= kill["during_chunk"] < 5
            assert 0 <= kill["worker_slot"] < 2

    def test_kills_clamped_by_chunks(self):
        schedule = plan_schedule(3, procs=2, kills=10, chunks=3,
                                 chunk_size=4, tenants=1,
                                 workloads=("binary",))
        assert len(schedule["kills"]) == 2

    def test_traffic_stays_in_universe(self):
        schedule = plan_schedule(5, **_PLAN_KNOBS)
        assert len(schedule["traffic"]) == 5
        for chunk in schedule["traffic"]:
            assert len(chunk) == 10
            for request in chunk:
                assert request["workload"] in ("binary", "query")
                assert request["config"]["quarantine_after"] in (3, 4)

    def test_drain_burst_is_disjoint_from_universe(self):
        schedule = plan_schedule(5, **_PLAN_KNOBS)
        assert schedule["drain_burst"]
        for request in schedule["drain_burst"]:
            # Fresh keys: the burst must actually execute, so it is
            # genuinely in flight when SIGTERM lands.
            assert request["config"]["quarantine_after"] >= 8000


class TestInvariantHelpers:
    def test_merge_leg_accumulates(self):
        total, part = LegResult("total"), LegResult("part")
        part.statuses = {"200": 3, "503": 1}
        part.error_codes = {"circuit_open": 1}
        part.fingerprints = {"k1": "aa"}
        part.retries, part.lost, part.echo_mismatches = 2, 1, 1
        part.cached, part.transport_errors = 1, 2
        merge_leg(total, part)
        assert total.statuses == {"200": 3, "503": 1}
        assert total.error_codes == {"circuit_open": 1}
        assert (total.retries, total.lost, total.echo_mismatches) \
            == (2, 1, 1)
        # Same key, same fingerprint: no mismatch.
        merge_leg(total, part)
        assert total.mismatched_fingerprints == 0
        assert total.statuses["200"] == 6

    def test_merge_leg_flags_cross_leg_divergence(self):
        total, part = LegResult("total"), LegResult("part")
        total.fingerprints = {"k1": "aa"}
        part.fingerprints = {"k1": "bb"}
        merge_leg(total, part)
        assert total.mismatched_fingerprints == 1

    def test_check_store_clean_and_corrupt(self, tmp_path):
        store = PersistStore(str(tmp_path))
        assert store.put("entry", digest("x"), {"v": 1})
        failures = []
        scan = check_store(str(tmp_path), "after kill 1", failures)
        assert failures == []
        assert scan["when"] == "after kill 1"
        assert scan["records"] == 1 and scan["corrupt"] == 0
        record = next(tmp_path.glob("*.rec"))
        record.write_bytes(b"torn" + record.read_bytes()[4:])
        scan = check_store(str(tmp_path), "after drain", failures)
        assert scan["corrupt"] == 1
        assert failures and "after drain" in failures[0]

    def test_error_taxonomy_is_bounded(self):
        assert "200" in ALLOWED_STATUSES
        assert "404" not in ALLOWED_STATUSES
        assert "circuit_open" in ALLOWED_ERROR_CODES
        assert "unknown" not in ALLOWED_ERROR_CODES


class TestEndToEnd:
    def test_tiny_chaos_run_holds_invariants(self, tmp_path):
        output = str(tmp_path / "BENCH_chaos.json")
        code = main([
            "--seed", "11", "--procs", "2", "--kills", "1",
            "--chunks", "3", "--chunk-size", "8", "--clients", "4",
            "--tenants", "2", "--workloads", "binary",
            "--output", output,
        ])
        assert code == 0
        with open(output, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["kind"] == "chaos-bench" and report["ok"]
        assert report["failures"] == []
        traffic = report["traffic"]
        assert traffic["lost"] == 0
        assert traffic["echo_mismatches"] == 0
        assert len(report["kills"]) == 1
        assert all(k["recycled"] for k in report["kills"])
        assert all(s["corrupt"] == 0 for s in report["store_checks"])
        oracle = report["offline_oracle"]
        assert oracle["checked"] == oracle["matched"] > 0
        drain = report["drain"]
        assert drain["supervisor_exit"] == 0
        assert drain["snapshot_saved"]
        assert drain["warm_fingerprints_identical"]
