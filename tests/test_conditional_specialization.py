"""Conditional specialization (§2.2.5).

"Rather than unconditionally executing an annotation, the programmer
guards the annotation with an arbitrary test of whether specialization
is desirable.  Polyvariant division will then automatically duplicate
the code following the test statement, one copy being specialized and
the other not."  Use cases named by the paper: specialize only values
that optimize well, only frequent values, or only loops that fit the
I-cache when unrolled.
"""

import pytest

from repro.config import ALL_ON
from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import Machine

#: Specialize (and completely unroll) only when the loop is short.
SRC = """
func weighted_sum(arr, n, x) {
    if (n <= 8) {
        make_static(n, i);
    }
    var s = 0;
    for (i = 0; i < n; i = i + 1) {
        s = s + arr[i] * x;
    }
    return s;
}
"""


def build(n):
    module = compile_source(SRC)
    static_machine = Machine(compile_static(module))
    compiled = compile_annotated(module)
    mem = Memory()
    arr = mem.alloc_array(list(range(1, 40)))
    machine, runtime = compiled.make_machine(memory=mem)
    static_mem = Memory()
    static_arr = static_mem.alloc_array(list(range(1, 40)))
    static_machine.memory = static_mem
    return (static_machine, static_arr), (machine, arr, runtime)


class TestConditionalSpecialization:
    def test_small_n_specializes(self):
        (sm, sarr), (dm, darr, runtime) = build(4)
        assert dm.run("weighted_sum", darr, 4, 3) == \
            sm.run("weighted_sum", sarr, 4, 3)
        stats = runtime.stats.regions[0]
        assert stats.dispatches == 1
        assert stats.specializations == 1
        assert stats.unrolling == "SW"

    def test_large_n_bypasses_specialization(self):
        (sm, sarr), (dm, darr, runtime) = build(30)
        assert dm.run("weighted_sum", darr, 30, 3) == \
            sm.run("weighted_sum", sarr, 30, 3)
        # The guard kept dynamic compilation out of the picture: the
        # unspecialized copy ran, no dispatch happened at all.
        assert 0 not in runtime.stats.regions or \
            runtime.stats.regions[0].dispatches == 0

    def test_mixed_usage(self):
        (sm, sarr), (dm, darr, runtime) = build(0)
        for n in (3, 30, 5, 30, 3):
            assert dm.run("weighted_sum", darr, n, 2) == \
                sm.run("weighted_sum", sarr, n, 2)
        stats = runtime.stats.regions[0]
        assert stats.dispatches == 3          # only the small-n calls
        assert stats.specializations == 2     # n=3 and n=5

    def test_icache_guard_idiom(self):
        # The paper's third use case: guard so that the unrolled loop
        # fits the I-cache.  Emitted footprint for n<=8 stays tiny.
        (_, _), (dm, darr, runtime) = build(0)
        dm.run("weighted_sum", darr, 8, 2)
        cache = runtime.entry_caches[0]
        code = next(iter(cache.items()))[1]
        assert code.footprint < 128
