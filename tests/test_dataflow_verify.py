"""Tests for the dataflow IR verifier stack: dominator tree, dominance
frontiers, def-before-use analysis, call resolution, the liveness
``live_before`` cache, the pipeline debug mode, and the
``split_at_annotations`` invariant."""

import pytest

from repro.analysis.defuse import (
    definitely_assigned,
    unreachable_blocks,
    use_before_def,
)
from repro.analysis.dominators import DominatorTree, dominance_frontier
from repro.analysis.liveness import liveness
from repro.bta.annotations import split_at_annotations
from repro.errors import IRError
from repro.ir import FunctionBuilder, Module, Op
from repro.ir.instructions import MakeStatic, Move
from repro.ir.validate import (
    unresolved_calls,
    verify_dataflow,
    verify_function,
    verify_module,
)
from repro.opt.pipeline import PassManager, optimize_function
from tests.helpers import build_countdown, build_diamond


def build_one_armed() -> "FunctionBuilder":
    """``y`` is assigned on the true arm only — a real def-before-use bug."""
    b = FunctionBuilder("one_armed", ("x",))
    b.branch("x", "then", "join")
    b.label("then")
    b.move("y", 1)
    b.jump("join")
    b.label("join")
    b.binop("r", Op.ADD, "y", "x")
    b.ret("r")
    return b.finish()


def build_with_orphan() -> "FunctionBuilder":
    """A reachable straight line plus an unreachable block with a bug."""
    b = FunctionBuilder("orphaned", ("x",))
    b.binop("r", Op.ADD, "x", 1)
    b.ret("r")
    b.label("orphan")
    b.binop("z", Op.ADD, "ghost", 1)  # 'ghost' is never defined
    b.ret("z")
    return b.finish()


class TestDominatorTree:
    def test_entry_dominates_everything(self):
        tree = DominatorTree.build(build_diamond())
        for label in tree.reachable:
            assert tree.dominates("entry", label)

    def test_self_dominance(self):
        tree = DominatorTree.build(build_diamond())
        assert tree.dominates("join", "join")
        assert not tree.strictly_dominates("join", "join")

    def test_branch_arms_do_not_dominate_join(self):
        tree = DominatorTree.build(build_diamond())
        assert not tree.dominates("then", "join")
        assert not tree.dominates("else", "join")
        assert tree.strictly_dominates("entry", "join")

    def test_loop_header_dominates_body(self):
        tree = DominatorTree.build(build_countdown())
        assert tree.strictly_dominates("head", "body")
        assert tree.strictly_dominates("head", "done")
        assert not tree.dominates("body", "head")

    def test_depth(self):
        tree = DominatorTree.build(build_diamond())
        assert tree.depth("entry") == 0
        assert tree.depth("then") == 1
        assert tree.depth("join") == 1

    def test_reachable_excludes_orphans(self):
        tree = DominatorTree.build(build_with_orphan())
        assert "orphan" not in tree.reachable
        assert not tree.dominates("entry", "orphan")

    def test_frontier_of_diamond(self):
        frontier = dominance_frontier(build_diamond())
        assert frontier["then"] == {"join"}
        assert frontier["else"] == {"join"}
        assert frontier["entry"] == set()

    def test_frontier_of_loop(self):
        frontier = dominance_frontier(build_countdown())
        assert "head" in frontier["body"]
        assert "head" in frontier["head"]  # head is its own frontier


class TestUseBeforeDef:
    def test_diamond_defs_are_accepted(self):
        # Both arms define y: a pure dominator test cannot prove this,
        # only the definite-assignment meet can.
        assert use_before_def(build_diamond()) == []

    def test_one_armed_def_is_reported(self):
        problems = use_before_def(build_one_armed())
        assert len(problems) == 1
        problem = problems[0]
        assert problem.block == "join"
        assert problem.name == "y"
        assert "not definitely assigned" in problem.describe()

    def test_loop_carried_defs_are_accepted(self):
        assert use_before_def(build_countdown()) == []

    def test_unreachable_blocks_found(self):
        assert unreachable_blocks(build_with_orphan()) == {"orphan"}
        assert unreachable_blocks(build_diamond()) == frozenset()

    def test_definitely_assigned_entry_is_params(self):
        assigned = definitely_assigned(build_diamond())
        assert assigned["entry"] == {"x"}
        assert assigned["join"] == {"x", "y"}


class TestVerifyDataflow:
    def test_clean_functions_pass(self):
        verify_dataflow(build_diamond())
        verify_dataflow(build_countdown())

    def test_one_armed_def_raises(self):
        with pytest.raises(IRError, match="join.*'y'"):
            verify_dataflow(build_one_armed())

    def test_unreachable_bug_is_ignored(self):
        # Unreachable code cannot execute; reporting it is the lint's
        # job (DYC002), not the verifier's.
        verify_dataflow(build_with_orphan())


class TestUnresolvedCalls:
    def _module_calling(self, callee: str) -> Module:
        b = FunctionBuilder("main", ())
        b.call("r", callee, (1,))
        b.ret("r")
        module = Module()
        module.add_function(b.finish())
        return module

    def test_unknown_callee_reported(self):
        module = self._module_calling("helper")
        findings = unresolved_calls(module)
        assert len(findings) == 1
        function, block, _index, callee = findings[0]
        assert (function, block, callee) == ("main", "entry", "helper")

    def test_intrinsics_resolve(self):
        assert unresolved_calls(self._module_calling("sqrt")) == []

    def test_defined_functions_resolve(self):
        module = self._module_calling("helper")
        b = FunctionBuilder("helper", ("a",))
        b.ret("a")
        module.add_function(b.finish())
        assert unresolved_calls(module) == []

    def test_verify_module_rejects_unresolved(self):
        module = self._module_calling("helper")
        with pytest.raises(IRError, match="helper"):
            verify_module(module)
        verify_module(module, check_calls=False)  # opt-out still works


class TestLiveBeforeCache:
    def _naive(self, function, result, label, index):
        block = function.block(label)
        live = set(result.live_out[label])
        for i in range(len(block.instrs) - 1, index - 1, -1):
            instr = block.instrs[i]
            live.difference_update(instr.defs())
            live.update(instr.uses())
        return frozenset(live)

    def test_matches_naive_recomputation_everywhere(self):
        for function in (build_countdown(), build_diamond()):
            result = liveness(function)
            for label, block in function.blocks.items():
                for index in range(len(block.instrs) + 1):
                    assert result.live_before(function, label, index) == \
                        self._naive(function, result, label, index)

    def test_block_exit_index_is_live_out(self):
        function = build_countdown()
        result = liveness(function)
        for label, block in function.blocks.items():
            exit_live = result.live_before(
                function, label, len(block.instrs)
            )
            assert exit_live == result.live_out[label]

    def test_repeated_queries_are_consistent(self):
        function = build_countdown()
        result = liveness(function)
        first = result.live_before(function, "body", 0)
        again = result.live_before(function, "body", 0)
        assert first == again == frozenset({"s", "n"})


def _drop_first_move(function) -> bool:
    """A deliberately broken "pass": deletes the entry block's first
    Move, orphaning every later use of its destination."""
    entry = function.blocks[function.entry]
    for index, instr in enumerate(entry.instrs):
        if isinstance(instr, Move):
            del entry.instrs[index]
            return True
    return False


class TestPipelineDebugMode:
    def test_debug_mode_catches_broken_pass(self):
        manager = PassManager(passes=(_drop_first_move,), verify=True)
        with pytest.raises(IRError, match="_drop_first_move"):
            manager.run(build_countdown())

    def test_error_names_the_function(self):
        manager = PassManager(passes=(_drop_first_move,), verify=True)
        with pytest.raises(IRError, match="countdown"):
            manager.run(build_countdown())

    def test_without_debug_the_bug_slips_through(self):
        # The contrast that motivates the mode: verify=False lets the
        # miscompile escape the pipeline silently.
        manager = PassManager(passes=(_drop_first_move,))
        manager.run(build_countdown())

    def test_standard_pipeline_is_clean_under_debug(self):
        for function in (build_countdown(), build_diamond()):
            optimize_function(function, debug=True)
            verify_function(function)
            verify_dataflow(function)


class TestSplitAtAnnotations:
    def _annotated_mid_block(self):
        b = FunctionBuilder("specialize_me", ("x", "n"))
        b.move("acc", 0)
        b.make_static("x")  # mid-block: index 1
        b.binop("acc", Op.ADD, "acc", "x")
        b.jump("head")
        b.label("head")
        b.binop("c", Op.GT, "n", 0)
        b.branch("c", "body", "done")
        b.label("body")
        b.binop("acc", Op.ADD, "acc", "x")
        b.binop("n", Op.SUB, "n", 1)
        b.jump("head")
        b.label("done")
        b.ret("acc")
        return b.finish()

    def test_split_preserves_dataflow_validity(self):
        function = self._annotated_mid_block()
        split_at_annotations(function)
        verify_function(function)
        verify_dataflow(function)

    def test_annotations_become_block_initial(self):
        function = self._annotated_mid_block()
        split_at_annotations(function)
        for block in function.blocks.values():
            for index, instr in enumerate(block.instrs):
                if isinstance(instr, MakeStatic):
                    assert index == 0
