"""End-to-end tests: MiniC → DyC compile → specialize → execute.

Every test checks *semantic equivalence* between the statically compiled
baseline and the dynamically compiled program, plus the specific staged
optimization behaviour under test.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ALL_ON, ALL_OFF, OptConfig
from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import Machine


def run_static(src: str, func: str, *args, memory=None):
    module = compile_static(compile_source(src))
    machine = Machine(module, memory=memory)
    return machine.run(func, *args), machine


def run_dynamic(src: str, func: str, *args, memory=None,
                config: OptConfig = ALL_ON, calls: int = 1):
    compiled = compile_annotated(compile_source(src), config)
    machine, runtime = compiled.make_machine(memory=memory)
    result = None
    for _ in range(calls):
        result = machine.run(func, *args)
    return result, machine, runtime


DOT_SRC = """
func dot(v, w, n) {
    make_static(v, n, i);
    var s = 0.0;
    for (i = 0; i < n; i = i + 1) {
        s = s + v@[i] * w[i];
    }
    return s;
}
"""


def dot_memory():
    mem = Memory()
    v = mem.alloc_array([0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 1.0, 0.0])
    w = mem.alloc_array([float(i + 1) for i in range(8)])
    return mem, v, w


class TestBasicRegions:
    SRC = "func f(x, n) { make_static(n); var y = n * 2 + 1; return x + y; }"

    def test_results_match_static(self):
        expected, _ = run_static(self.SRC, "f", 10, 3)
        result, _, _ = run_dynamic(self.SRC, "f", 10, 3)
        assert result == expected == 17

    def test_specialized_code_cached_and_reused(self):
        result, machine, runtime = run_dynamic(self.SRC, "f", 10, 3,
                                               calls=3)
        stats = runtime.stats.regions[0]
        assert stats.dispatches == 3
        assert stats.specializations == 1  # hit, hit after first miss

    def test_different_key_respecializes(self):
        compiled = compile_annotated(compile_source(self.SRC))
        machine, runtime = compiled.make_machine()
        assert machine.run("f", 10, 3) == 17
        assert machine.run("f", 10, 5) == 21
        assert machine.run("f", 10, 3) == 17
        stats = runtime.stats.regions[0]
        assert stats.specializations == 2
        assert stats.dispatches == 3

    def test_dynamic_region_is_faster_asymptotically(self):
        # Needs a region big enough to amortize the dispatch: a loop over
        # a static bound (the paper's kernels are this shape).
        src = """
        func f(x, n) {
            make_static(n, i) : cache_one_unchecked;
            var s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + x * i; }
            return s;
        }
        """
        _, static_machine = run_static(src, "f", 10, 20)
        compiled = compile_annotated(compile_source(src))
        machine, _ = compiled.make_machine()
        machine.run("f", 10, 20)            # pay specialization
        before = machine.stats.cycles
        assert machine.run("f", 10, 20) == sum(10 * i for i in range(20))
        dyn_cycles = machine.stats.cycles - before
        assert dyn_cycles < static_machine.stats.cycles

    def test_return_value_with_fully_static_result(self):
        src = "func f(n) { make_static(n); return n * n; }"
        result, _, _ = run_dynamic(src, "f", 7)
        assert result == 49


class TestCompleteLoopUnrolling:
    def test_unrolled_dot_product_matches(self):
        mem, v, w = dot_memory()
        expected, _ = run_static(DOT_SRC, "dot", v, w, 8, memory=mem)
        mem2, v2, w2 = dot_memory()
        result, _, runtime = run_dynamic(DOT_SRC, "dot", v2, w2, 8,
                                         memory=mem2)
        assert result == expected
        assert runtime.stats.regions[0].unrolling == "SW"

    def test_no_branches_in_unrolled_code(self):
        from repro.ir.instructions import Branch
        mem, v, w = dot_memory()
        _, _, runtime = run_dynamic(DOT_SRC, "dot", v, w, 8, memory=mem)
        code = list(runtime.entry_caches[0].items())[0][1]
        for block in code.function.blocks.values():
            assert not isinstance(block.instrs[-1], Branch)

    def test_unrolling_ablation_keeps_loop(self):
        mem, v, w = dot_memory()
        config = ALL_ON.without("complete_loop_unrolling")
        result, _, runtime = run_dynamic(DOT_SRC, "dot", v, w, 8,
                                         memory=mem, config=config)
        mem2, v2, w2 = dot_memory()
        expected, _ = run_static(DOT_SRC, "dot", v2, w2, 8, memory=mem2)
        assert result == expected
        assert runtime.stats.regions[0].unrolling is None

    def test_unrolling_generates_more_instructions(self):
        mem, v, w = dot_memory()
        _, _, with_unroll = run_dynamic(DOT_SRC, "dot", v, w, 8,
                                        memory=mem)
        mem2, v2, w2 = dot_memory()
        _, _, without = run_dynamic(
            DOT_SRC, "dot", v2, w2, 8, memory=mem2,
            config=ALL_ON.without("complete_loop_unrolling"),
        )
        assert (with_unroll.stats.regions[0].instructions_generated
                > without.stats.regions[0].instructions_generated)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.sampled_from([0.0, 1.0, 2.0, 0.5]),
                    min_size=1, max_size=12))
    def test_unrolled_semantics_any_vector(self, vector):
        mem = Memory()
        v = mem.alloc_array(vector)
        w = mem.alloc_array([float(i) for i in range(len(vector))])
        expected = sum(a * b for a, b in
                       zip(vector, (float(i) for i in range(len(vector)))))
        result, _, _ = run_dynamic(DOT_SRC, "dot", v, w, len(vector),
                                   memory=mem)
        assert result == pytest.approx(expected)


class TestStaticLoadsAndCalls:
    def test_static_loads_fold(self):
        mem, v, w = dot_memory()
        _, _, runtime = run_dynamic(DOT_SRC, "dot", v, w, 8, memory=mem)
        assert runtime.stats.regions[0].static_loads_folded == 8

    def test_static_loads_ablation_emits_loads(self):
        from repro.ir.instructions import Load
        mem, v, w = dot_memory()
        _, _, runtime = run_dynamic(
            DOT_SRC, "dot", v, w, 8, memory=mem,
            config=ALL_ON.without("static_loads"),
        )
        stats = runtime.stats.regions[0]
        assert stats.static_loads_folded == 0
        code = list(runtime.entry_caches[0].items())[0][1]
        loads = [
            i for b in code.function.blocks.values() for i in b.instrs
            if isinstance(i, Load)
        ]
        assert len(loads) >= 8  # the v loads now appear in emitted code

    CHEB_SRC = """
    func approx(n, x) {
        make_static(n, k);
        var s = 0.0;
        for (k = 0; k < n; k = k + 1) {
            s = s + cos(3.14159 * k / n) * x;
        }
        return s;
    }
    """

    def test_static_calls_memoized(self):
        result, _, runtime = run_dynamic(self.CHEB_SRC, "approx", 4, 2.0)
        expected, _ = run_static(self.CHEB_SRC, "approx", 4, 2.0)
        assert result == pytest.approx(expected)
        assert runtime.stats.regions[0].static_calls_folded == 4

    def test_static_calls_ablation(self):
        result, _, runtime = run_dynamic(
            self.CHEB_SRC, "approx", 4, 2.0,
            config=ALL_ON.without("static_calls"),
        )
        expected, _ = run_static(self.CHEB_SRC, "approx", 4, 2.0)
        assert result == pytest.approx(expected)
        assert runtime.stats.regions[0].static_calls_folded == 0

    def test_pure_user_function_static_call(self):
        src = """
        pure func sq(x) { return x * x; }
        func f(n, y) { make_static(n); return sq(n) + y; }
        """
        result, _, runtime = run_dynamic(src, "f", 5, 1)
        assert result == 26
        assert runtime.stats.regions[0].static_calls_folded == 1


class TestZcpAndDae:
    def test_zero_iterations_fully_eliminated(self):
        mem, v, w = dot_memory()
        _, _, runtime = run_dynamic(DOT_SRC, "dot", v, w, 8, memory=mem)
        stats = runtime.stats.regions[0]
        assert stats.zcp_zero_hits >= 4   # the 0.0 weights
        assert stats.zcp_copy_hits >= 2   # the 1.0 weights
        assert stats.dae_removed > 0      # dead loads removed

    def test_zcp_ablation_changes_nothing_semantically(self):
        mem, v, w = dot_memory()
        expected, _ = run_static(DOT_SRC, "dot", v, w, 8, memory=mem)
        mem2, v2, w2 = dot_memory()
        result, _, runtime = run_dynamic(
            DOT_SRC, "dot", v2, w2, 8, memory=mem2,
            config=ALL_ON.without("zero_copy_propagation"),
        )
        assert result == expected
        assert runtime.stats.regions[0].zcp_zero_hits == 0
        assert runtime.stats.regions[0].zcp_copy_hits == 0

    def test_dae_ablation_keeps_moves(self):
        mem, v, w = dot_memory()
        _, _, with_dae = run_dynamic(DOT_SRC, "dot", v, w, 8, memory=mem)
        mem2, v2, w2 = dot_memory()
        result, _, without = run_dynamic(
            DOT_SRC, "dot", v2, w2, 8, memory=mem2,
            config=ALL_ON.without("dead_assignment_elimination"),
        )
        mem3, v3, w3 = dot_memory()
        expected, _ = run_static(DOT_SRC, "dot", v3, w3, 8, memory=mem3)
        assert result == expected
        assert (without.stats.regions[0].instructions_generated
                > with_dae.stats.regions[0].instructions_generated)
        assert without.stats.regions[0].dae_removed == 0

    def test_dyn_code_with_zcp_dae_is_smaller_and_faster(self):
        mem, v, w = dot_memory()
        compiled = compile_annotated(compile_source(DOT_SRC))
        machine, runtime = compiled.make_machine(memory=mem)
        machine.run("dot", v, w, 8)
        before = machine.stats.cycles
        machine.run("dot", v, w, 8)
        fast = machine.stats.cycles - before

        mem2, v2, w2 = dot_memory()
        compiled2 = compile_annotated(
            compile_source(DOT_SRC),
            ALL_ON.without("zero_copy_propagation",
                           "dead_assignment_elimination"),
        )
        machine2, _ = compiled2.make_machine(memory=mem2)
        machine2.run("dot", v2, w2, 8)
        before = machine2.stats.cycles
        machine2.run("dot", v2, w2, 8)
        slow = machine2.stats.cycles - before
        assert fast < slow


class TestStrengthReduction:
    SRC = """
    func addr(x, bsize) {
        make_static(bsize);
        var block = x / bsize;
        var offset = x % bsize;
        var scaled = x * bsize;
        return block + offset + scaled;
    }
    """

    def test_power_of_two_reduced(self):
        from repro.ir.instructions import BinOp, Op
        result, _, runtime = run_dynamic(self.SRC, "addr", 100, 32)
        expected, _ = run_static(self.SRC, "addr", 100, 32)
        assert result == expected
        stats = runtime.stats.regions[0]
        assert stats.sr_applied == 3
        code = list(runtime.entry_caches[0].items())[0][1]
        ops = [
            i.op for b in code.function.blocks.values() for i in b.instrs
            if isinstance(i, BinOp)
        ]
        assert Op.SHR in ops and Op.AND in ops and Op.SHL in ops
        assert Op.DIV not in ops and Op.MOD not in ops and Op.MUL not in ops

    def test_non_power_of_two_not_reduced(self):
        # 43 is not 2^a ± 2^b, so neither the shift nor the two-term
        # decomposition applies; div/mod by 43 are not reducible either.
        result, _, runtime = run_dynamic(self.SRC, "addr", 100, 43)
        expected, _ = run_static(self.SRC, "addr", 100, 43)
        assert result == expected
        assert runtime.stats.regions[0].sr_applied == 0

    def test_two_term_multiplier_decomposed(self):
        from repro.ir.instructions import BinOp, Op
        result, _, runtime = run_dynamic(self.SRC, "addr", 100, 33)
        expected, _ = run_static(self.SRC, "addr", 100, 33)
        assert result == expected
        # x * 33 becomes (x << 5) + x in the emitted code.
        assert runtime.stats.regions[0].sr_applied == 1

    def test_sr_ablation(self):
        result, _, runtime = run_dynamic(
            self.SRC, "addr", 100, 32,
            config=ALL_ON.without("strength_reduction"),
        )
        expected, _ = run_static(self.SRC, "addr", 100, 32)
        assert result == expected
        assert runtime.stats.regions[0].sr_applied == 0

    def test_sr_is_faster(self):
        def cycles_with(config):
            compiled = compile_annotated(compile_source(self.SRC), config)
            machine, _ = compiled.make_machine()
            machine.run("addr", 100, 32)
            before = machine.stats.cycles
            machine.run("addr", 100, 32)
            return machine.stats.cycles - before

        assert cycles_with(ALL_ON) < cycles_with(
            ALL_ON.without("strength_reduction")
        )


class TestInternalPromotions:
    SRC = """
    func f(x, n) {
        make_static(n);
        var a = n * 2;
        n = x + 1;
        var b = n * 3;
        return a + b;
    }
    """

    def test_promotion_resumes_specialization(self):
        result, _, runtime = run_dynamic(self.SRC, "f", 10, 4)
        expected, _ = run_static(self.SRC, "f", 10, 4)
        assert result == expected == 41
        stats = runtime.stats.regions[0]
        assert stats.internal_promotion_points >= 1
        assert stats.internal_promotions_executed >= 1

    def test_promotion_continuations_cached(self):
        compiled = compile_annotated(compile_source(self.SRC))
        machine, runtime = compiled.make_machine()
        assert machine.run("f", 10, 4) == 41
        assert machine.run("f", 10, 4) == 41   # same promoted value: hit
        assert machine.run("f", 20, 4) == 71   # new promoted value: miss
        assert machine.run("f", 20, 4) == 71
        stats = runtime.stats.regions[0]
        assert stats.internal_promotions_executed == 4

    def test_promotions_ablation_demotes(self):
        result, _, runtime = run_dynamic(
            self.SRC, "f", 10, 4,
            config=ALL_ON.without("internal_promotions"),
        )
        assert result == 41
        assert runtime.stats.regions[0].internal_promotion_points == 0


class TestPolyvariantDivision:
    SRC = """
    func f(x, n, v) {
        make_static(n);
        if (x > 0) {
            make_static(v);
        }
        var r = v * n;
        return r + x;
    }
    """

    def test_both_paths_correct(self):
        for x in (5, -5):
            expected, _ = run_static(self.SRC, "f", x, 3, 7)
            result, _, _ = run_dynamic(self.SRC, "f", x, 3, 7)
            assert result == expected

    def test_division_tracked(self):
        compiled = compile_annotated(compile_source(self.SRC))
        machine, runtime = compiled.make_machine()
        machine.run("f", 5, 3, 7)
        machine.run("f", -5, 3, 7)
        assert runtime.stats.regions[0].used_polyvariant_division

    def test_division_ablation_still_correct(self):
        config = ALL_ON.without("polyvariant_division")
        for x in (5, -5):
            expected, _ = run_static(self.SRC, "f", x, 3, 7)
            result, _, _ = run_dynamic(self.SRC, "f", x, 3, 7,
                                       config=config)
            assert result == expected


class TestDispatchPolicies:
    SRC_UNCHECKED = """
    func f(x, n) {
        make_static(n) : cache_one_unchecked;
        return x * n;
    }
    """

    def test_unchecked_dispatch_cheap(self):
        compiled = compile_annotated(compile_source(self.SRC_UNCHECKED))
        machine, runtime = compiled.make_machine()
        machine.run("f", 1, 3)
        machine.run("f", 2, 3)
        stats = runtime.stats.regions[0]
        assert stats.unchecked_dispatches == 2
        # Second dispatch cost ~10 cycles.
        assert stats.dispatch_cycles / stats.dispatches < 60

    def test_unchecked_is_unsafe_when_key_changes(self):
        # The hallmark hazard: a changed value silently reuses stale code.
        compiled = compile_annotated(compile_source(self.SRC_UNCHECKED))
        machine, _ = compiled.make_machine()
        assert machine.run("f", 10, 3) == 30
        assert machine.run("f", 10, 4) == 30  # stale! specialized for n=3

    def test_strict_mode_catches_unsafe_annotation(self):
        from repro.errors import CacheError
        config = OptConfig(check_annotations=True)
        compiled = compile_annotated(
            compile_source(self.SRC_UNCHECKED), config
        )
        machine, _ = compiled.make_machine()
        machine.run("f", 10, 3)
        with pytest.raises(CacheError):
            machine.run("f", 10, 4)

    def test_unchecked_ablation_forces_hash_dispatch(self):
        compiled = compile_annotated(
            compile_source(self.SRC_UNCHECKED),
            ALL_ON.without("unchecked_dispatching"),
        )
        machine, runtime = compiled.make_machine()
        assert machine.run("f", 10, 3) == 30
        assert machine.run("f", 10, 4) == 40  # correct now (cache-all)
        stats = runtime.stats.regions[0]
        assert stats.unchecked_dispatches == 0
        assert stats.dispatch_cycles / stats.dispatches > 60

    def test_cache_all_dispatch_cost_about_90_cycles(self):
        src = "func f(x, n) { make_static(n); return x * n; }"
        compiled = compile_annotated(compile_source(src))
        machine, runtime = compiled.make_machine()
        for _ in range(10):
            machine.run("f", 1, 3)
        stats = runtime.stats.regions[0]
        average = stats.dispatch_cycles / stats.dispatches
        assert 60 <= average <= 130


class TestMultiWayUnrolling:
    """A bytecode-interpreter shape: multi-way unrolling over a static
    program, like mipsi (§2.2.4's directed graph of unrolled bodies)."""

    # opcodes: 0=halt, 1=acc+=operand, 2=acc-=operand,
    #          3=jump-if-acc-positive to operand, 4=jump to operand
    SRC = """
    func interp(prog, acc) {
        make_static(prog, pc);
        var pc = 0;
        var running = 1;
        while (running) {
            var op = prog@[pc * 2];
            var arg = prog@[pc * 2 + 1];
            if (op == 0) { running = 0; }
            else { if (op == 1) { acc = acc + arg; pc = pc + 1; }
            else { if (op == 2) { acc = acc - arg; pc = pc + 1; }
            else { if (op == 3) {
                if (acc > 0) { pc = arg; } else { pc = pc + 1; }
            }
            else { pc = arg; } } } }
        }
        return acc;
    }
    """

    @staticmethod
    def _program(mem):
        # acc -= 3 repeatedly until acc <= 0 (a loop in the interpreted
        # program), then add 100 and halt.
        return mem.alloc_array([
            2, 3,    # 0: acc -= 3
            3, 0,    # 1: if acc > 0 goto 0
            1, 100,  # 2: acc += 100
            0, 0,    # 3: halt
        ])

    def _interp(self, acc):
        while True:
            if acc > 0:
                acc -= 3
                continue
            acc -= 3 if False else 0  # pragma: no cover
        return acc

    def test_interpreter_specialized_correctly(self):
        mem = Memory()
        prog = self._program(mem)
        expected, _ = run_static(self.SRC, "interp", prog, 10,
                                 memory=mem)
        mem2 = Memory()
        prog2 = self._program(mem2)
        result, _, runtime = run_dynamic(self.SRC, "interp", prog2, 10,
                                         memory=mem2)
        assert result == expected
        assert runtime.stats.regions[0].unrolling == "MW"

    def test_emitted_code_contains_loop_back_edge(self):
        mem = Memory()
        prog = self._program(mem)
        _, _, runtime = run_dynamic(self.SRC, "interp", prog, 10,
                                    memory=mem)
        code = list(runtime.entry_caches[0].items())[0][1]
        labels = set(code.function.blocks)
        # Some block branches back to an already-emitted block (the
        # compiled loop of the interpreted program).
        ordered = list(code.function.blocks)
        position = {label: i for i, label in enumerate(ordered)}
        has_back_edge = any(
            position[succ] <= position[label]
            for label in ordered
            for succ in code.function.blocks[label].successors()
            if succ in labels
        )
        assert has_back_edge

    def test_various_inputs(self):
        for acc in (0, 1, 7, 30):
            mem = Memory()
            prog = self._program(mem)
            expected, _ = run_static(self.SRC, "interp", prog, acc,
                                     memory=mem)
            mem2 = Memory()
            prog2 = self._program(mem2)
            result, _, _ = run_dynamic(self.SRC, "interp", prog2, acc,
                                       memory=mem2)
            assert result == expected


class TestEverythingOff:
    def test_all_off_still_correct(self):
        mem, v, w = dot_memory()
        expected, _ = run_static(DOT_SRC, "dot", v, w, 8, memory=mem)
        mem2, v2, w2 = dot_memory()
        result, _, _ = run_dynamic(DOT_SRC, "dot", v2, w2, 8,
                                   memory=mem2, config=ALL_OFF)
        assert result == expected

    @pytest.mark.parametrize("ablation", [
        "complete_loop_unrolling", "static_loads",
        "unchecked_dispatching", "static_calls",
        "zero_copy_propagation", "dead_assignment_elimination",
        "strength_reduction", "internal_promotions",
        "polyvariant_division",
    ])
    def test_each_single_ablation_preserves_semantics(self, ablation):
        mem, v, w = dot_memory()
        expected, _ = run_static(DOT_SRC, "dot", v, w, 8, memory=mem)
        mem2, v2, w2 = dot_memory()
        result, _, _ = run_dynamic(DOT_SRC, "dot", v2, w2, 8,
                                   memory=mem2,
                                   config=ALL_ON.without(ablation))
        assert result == expected


class TestRegionShapes:
    def test_region_with_host_code_after_exit(self):
        src = """
        func f(x, n) {
            make_static(n);
            var y = n + x;
            var z = y * 2;
            return z + 1;
        }
        """
        expected, _ = run_static(src, "f", 3, 4)
        result, _, _ = run_dynamic(src, "f", 3, 4)
        assert result == expected == 15

    def test_store_inside_region(self):
        src = """
        func fill(arr, n) {
            make_static(n, i);
            for (i = 0; i < n; i = i + 1) { arr[i] = i * i; }
            return 0;
        }
        """
        mem = Memory()
        arr = mem.alloc(5)
        run_dynamic(src, "fill", arr, 5, memory=mem)
        assert mem.read_array(arr, 5) == [0, 1, 4, 9, 16]

    def test_nested_static_loops(self):
        src = """
        func grid(rows, cols, out) {
            make_static(rows, cols, r, c);
            var k = 0;
            for (r = 0; r < rows; r = r + 1) {
                for (c = 0; c < cols; c = c + 1) {
                    out[k] = r * 10 + c;
                    k = k + 1;
                }
            }
            return k;
        }
        """
        mem = Memory()
        out = mem.alloc(6)
        result, _, runtime = run_dynamic(src, "grid", 2, 3, out,
                                         memory=mem)
        assert result == 6
        assert mem.read_array(out, 6) == [0, 1, 2, 10, 11, 12]
        assert runtime.stats.regions[0].unrolling == "SW"

    def test_two_regions_one_program(self):
        src = """
        func g(y, m) { make_static(m); return y * m; }
        func f(x, n) { make_static(n); return x + n; }
        func main(a) { return f(a, 2) + g(a, 3); }
        """
        compiled = compile_annotated(compile_source(src))
        machine, runtime = compiled.make_machine()
        assert machine.run("main", 5) == 7 + 15
        assert len(runtime.stats.regions) == 2

    def test_region_called_in_loop_dispatches_each_time(self):
        src = """
        func f(x, n) { make_static(n); return x * n; }
        func main(k) {
            var s = 0;
            for (i = 0; i < k; i = i + 1) { s = s + f(i, 3); }
            return s;
        }
        """
        compiled = compile_annotated(compile_source(src))
        machine, runtime = compiled.make_machine()
        assert machine.run("main", 5) == 3 * (0 + 1 + 2 + 3 + 4)
        stats = runtime.stats.regions[0]
        assert stats.dispatches == 5
        assert stats.specializations == 1
