"""Tests for the call graph, interprocedural effect summaries, and the
autoannotate admission gate built on them."""

from repro.analysis.callgraph import CallGraph
from repro.analysis.effects import effect_summaries
from repro.autoannotate import Suggestion, admit_suggestions
from repro.frontend import compile_source


def _summaries(source: str):
    module = compile_source(source)
    return module, effect_summaries(module)


class TestCallGraph:
    def test_internal_and_external_edges(self):
        module = compile_source("""
            func helper(x) { return x + 1; }
            func main(x) { return helper(x) + sqrt(x); }
        """)
        graph = CallGraph.build(module)
        assert graph.internal["main"] == frozenset({"helper"})
        assert graph.external["main"] == frozenset({"sqrt"})
        assert graph.callers_of("helper") == frozenset({"main"})

    def test_sccs_are_bottom_up(self):
        module = compile_source("""
            func leaf(x) { return x; }
            func mid(x) { return leaf(x); }
            func main(x) { return mid(x); }
        """)
        order = CallGraph.build(module).sccs()
        position = {
            name: i for i, comp in enumerate(order) for name in comp
        }
        assert position["leaf"] < position["mid"] < position["main"]

    def test_mutual_recursion_single_component(self):
        module = compile_source("""
            func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
            func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
            func main(n) { return even(n); }
        """)
        graph = CallGraph.build(module)
        components = [c for c in graph.sccs() if "even" in c]
        assert components == [frozenset({"even", "odd"})]
        assert graph.is_recursive("even")
        assert not graph.is_recursive("main")


class TestEffectSummaries:
    def test_pure_arithmetic_is_pure(self):
        _, summaries = _summaries("""
            func f(x) { return x * 2 + 1; }
            func main(x) { return f(x); }
        """)
        assert summaries["f"].pure
        assert summaries["main"].pure

    def test_store_attributed_to_parameter(self):
        _, summaries = _summaries("""
            func poke(buf, i) { buf[i] = 1; return 0; }
            func main(arr, i) { return poke(arr, i); }
        """)
        assert summaries["poke"].writes_memory
        assert summaries["poke"].writes_params == frozenset({"buf"})
        # The write propagates through the call and re-maps to the
        # caller's actual argument.
        assert summaries["main"].writes_params == frozenset({"arr"})
        assert not summaries["main"].pure

    def test_reads_do_not_break_purity(self):
        _, summaries = _summaries("""
            func peek(buf, i) { return buf[i]; }
            func main(arr, i) { return peek(arr, i); }
        """)
        assert summaries["peek"].reads_memory
        assert summaries["peek"].reads_params == frozenset({"buf"})
        assert summaries["peek"].pure

    def test_impure_intrinsic_is_observable(self):
        _, summaries = _summaries("""
            func report(x) { print_val(x); return x; }
            func main(x) { return report(x); }
        """)
        assert summaries["report"].observable_effects
        assert not summaries["report"].writes_memory
        assert not summaries["report"].pure
        assert not summaries["main"].pure

    def test_pure_intrinsic_stays_pure(self):
        _, summaries = _summaries("""
            func main(x) { return sqrt(x) + sin(x); }
        """)
        assert summaries["main"].pure

    def test_recursive_store_reaches_fixpoint(self):
        _, summaries = _summaries("""
            func fill(buf, n) {
                if (n == 0) { return 0; }
                buf[n] = n;
                return fill(buf, n - 1);
            }
            func main(arr, n) { return fill(arr, n); }
        """)
        assert summaries["fill"].writes_params == frozenset({"buf"})
        assert summaries["main"].writes_params == frozenset({"arr"})

    def test_mutual_recursion_propagates_effects(self):
        _, summaries = _summaries("""
            func ping(buf, n) {
                if (n == 0) { return 0; }
                return pong(buf, n - 1);
            }
            func pong(buf, n) {
                buf[n] = n;
                return ping(buf, n - 1);
            }
            func main(arr, n) { return ping(arr, n); }
        """)
        assert summaries["ping"].writes_params == frozenset({"buf"})
        assert summaries["pong"].writes_params == frozenset({"buf"})
        assert summaries["main"].writes_params == frozenset({"arr"})

    def test_escaping_parameter_recorded(self):
        _, summaries = _summaries("""
            func stash(slot, v) { slot[0] = v; return 0; }
            func main(arr, v) { return stash(arr, v); }
        """)
        assert "v" in summaries["stash"].escapes_params
        assert "v" in summaries["main"].escapes_params


UNSOUND_BASE = """
func bump(buf, i) {
    buf[i] = buf[i] + 1;
    return 0;
}
func scale(table, n) {
    var acc = 0;
    for (k = 0; k < 4; k = k + 1) {
        var w = table[k];
        var z = bump(table, k);
        acc = acc + w * n + z;
    }
    return acc;
}
"""


def _suggestion(**overrides):
    fields = dict(
        function="scale", params=("table",), induction_vars=("k",),
        policy="cache_all", cycle_share=0.9, invariance=1.0,
        rationale="test candidate",
    )
    fields.update(overrides)
    return Suggestion(**fields)


class TestAdmission:
    def test_unsound_candidate_rejected_statically(self):
        module = compile_source(UNSOUND_BASE)
        results = admit_suggestions(
            module, [_suggestion()], static_loads=True
        )
        assert len(results) == 1
        assert not results[0].admitted
        assert any(d.code == "DYC301" for d in results[0].introduced)
        assert "DYC301" in results[0].reason

    def test_sound_candidate_admitted(self):
        module = compile_source(UNSOUND_BASE)
        results = admit_suggestions(
            module, [_suggestion()], static_loads=False
        )
        assert results[0].admitted
        assert results[0].introduced == ()
        assert results[0].reason == "statically safe"

    def test_module_not_mutated_by_admission(self):
        from repro.ir.instructions import MakeStatic

        module = compile_source(UNSOUND_BASE)
        admit_suggestions(module, [_suggestion()], static_loads=True)
        annotations = [
            instr for f in module.functions.values()
            for _, _, instr in f.instructions()
            if isinstance(instr, MakeStatic)
        ]
        assert annotations == []
