"""Semantics of the shared operator evaluator, incl. property-based checks."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import TrapError
from repro.ir.eval import (
    eval_binop,
    eval_unop,
    fits_immediate,
    is_power_of_two,
    log2_exact,
)
from repro.ir.instructions import Op

ints = st.integers(min_value=-10**6, max_value=10**6)
floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestCSemantics:
    @pytest.mark.parametrize("lhs,rhs,expected", [
        (7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3),
    ])
    def test_int_division_truncates_toward_zero(self, lhs, rhs, expected):
        assert eval_binop(Op.DIV, lhs, rhs) == expected

    @pytest.mark.parametrize("lhs,rhs,expected", [
        (7, 2, 1), (-7, 2, -1), (7, -2, 1), (-7, -2, -1),
    ])
    def test_int_mod_sign_follows_dividend(self, lhs, rhs, expected):
        assert eval_binop(Op.MOD, lhs, rhs) == expected

    def test_mixed_arithmetic_promotes_to_float(self):
        assert eval_binop(Op.DIV, 1, 2.0) == 0.5
        assert isinstance(eval_binop(Op.ADD, 1, 2.0), float)

    def test_division_by_zero_traps(self):
        with pytest.raises(TrapError):
            eval_binop(Op.DIV, 1, 0)
        with pytest.raises(TrapError):
            eval_binop(Op.MOD, 1, 0)

    def test_bitwise_rejects_floats(self):
        with pytest.raises(TrapError):
            eval_binop(Op.AND, 1.0, 2)
        with pytest.raises(TrapError):
            eval_binop(Op.SHL, 1, 2.0)

    def test_negative_shift_traps(self):
        with pytest.raises(TrapError):
            eval_binop(Op.SHL, 1, -1)

    def test_comparisons_yield_0_or_1(self):
        assert eval_binop(Op.LT, 1, 2) == 1
        assert eval_binop(Op.GE, 1, 2) == 0

    def test_unops(self):
        assert eval_unop(Op.NEG, 5) == -5
        assert eval_unop(Op.NOT, 0) == 1
        assert eval_unop(Op.NOT, 3) == 0

    def test_unknown_binop_traps(self):
        with pytest.raises(TrapError):
            eval_binop(Op.NEG, 1, 2)
        with pytest.raises(TrapError):
            eval_unop(Op.ADD, 1)


class TestProperties:
    @given(ints, st.integers(min_value=-1000, max_value=1000).filter(bool))
    def test_div_mod_reconstruct(self, a, b):
        q = eval_binop(Op.DIV, a, b)
        r = eval_binop(Op.MOD, a, b)
        assert q * b + r == a
        assert abs(r) < abs(b)

    @given(ints, ints)
    def test_add_commutes(self, a, b):
        assert eval_binop(Op.ADD, a, b) == eval_binop(Op.ADD, b, a)

    @given(ints, ints)
    def test_mul_commutes(self, a, b):
        assert eval_binop(Op.MUL, a, b) == eval_binop(Op.MUL, b, a)

    @given(ints)
    def test_shift_equals_power_multiply(self, a):
        for k in range(4):
            assert eval_binop(Op.SHL, a, k) == a * (2 ** k)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_shr_matches_div_for_nonnegative(self, a):
        for k in range(1, 5):
            assert eval_binop(Op.SHR, a, k) == eval_binop(
                Op.DIV, a, 2 ** k)

    @given(floats, floats)
    def test_fmod_matches_math(self, a, b):
        if b == 0:
            return
        assert eval_binop(Op.MOD, a, b) == math.fmod(a, b)


class TestStrengthReductionHelpers:
    def test_power_of_two_detection(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)
        assert not is_power_of_two(6)
        assert not is_power_of_two(4.0)

    @given(st.integers(min_value=0, max_value=30))
    def test_log2_exact_roundtrip(self, k):
        assert log2_exact(2 ** k) == k

    def test_fits_immediate_alpha_literal(self):
        assert fits_immediate(0)
        assert fits_immediate(255)
        assert not fits_immediate(256)
        assert not fits_immediate(-1)
        assert not fits_immediate(3.0)
