"""Tests for the experiment harness: metrics, runner, table builders."""

import math

import pytest

from repro.config import ALL_ON
from repro.evalharness.metrics import RegionMetrics, breakeven_point
from repro.evalharness.runner import (
    RunResult,
    VerificationError,
    run_workload,
)
from repro.evalharness.tables import (
    Table,
    applicable_ablations,
    build_table1,
    render_table,
)
from repro.ir import Memory
from repro.workloads import get_workload
from repro.workloads.base import Workload, WorkloadInput


class TestMetrics:
    def test_breakeven_definition(self):
        # o / (s - d): the paper's formula.
        assert breakeven_point(100.0, 60.0, 400.0) == pytest.approx(10.0)

    def test_breakeven_never_when_not_faster(self):
        assert math.isinf(breakeven_point(50.0, 60.0, 100.0))
        assert math.isinf(breakeven_point(50.0, 50.0, 100.0))

    def make(self, **kwargs):
        defaults = dict(
            name="w", region_label="w",
            static_cycles_per_invocation=300.0,
            dynamic_cycles_per_invocation=100.0,
            dc_overhead_cycles=1000.0,
            instructions_generated=50,
            invocations=10,
            breakeven_unit="calls",
            units_per_invocation=4.0,
        )
        defaults.update(kwargs)
        return RegionMetrics(**defaults)

    def test_asymptotic_speedup(self):
        assert self.make().asymptotic_speedup == pytest.approx(3.0)

    def test_breakeven_units_scale(self):
        metrics = self.make()
        assert metrics.breakeven_invocations == pytest.approx(5.0)
        assert metrics.breakeven_units == pytest.approx(20.0)

    def test_overhead_per_instruction(self):
        assert self.make().overhead_per_instruction == pytest.approx(20.0)
        assert self.make(
            instructions_generated=0
        ).overhead_per_instruction == 0.0


class TestRunner:
    def test_runner_full_result(self):
        result = run_workload(get_workload("query"))
        assert result.static_total_cycles > 0
        assert result.dynamic_total_cycles > 0
        assert result.dc_cycles > 0
        assert 0 < result.region_fraction_of_static <= 1.0
        assert result.outputs_match
        metrics = result.region_metrics()
        assert len(metrics) == 1
        assert metrics[0].invocations == result.region_entries["match"]

    def test_runner_detects_divergence(self):
        # A workload whose checksum is deliberately broken must raise.
        base = get_workload("query")
        counter = [0]

        def bad_setup(mem: Memory) -> WorkloadInput:
            inner = base.setup(mem)
            counter[0] += 1
            tag = counter[0]  # differs between static and dynamic run

            def checksum(memory, machine):
                return tag

            return WorkloadInput(args=inner.args, checksum=checksum)

        broken = Workload(
            name="broken", kind="kernel", description="",
            static_vars="", static_values="", source=base.source,
            entry=base.entry, region_functions=base.region_functions,
            setup=bad_setup,
        )
        with pytest.raises(VerificationError):
            run_workload(broken)

    def test_whole_program_speedup_includes_dc(self):
        result = run_workload(get_workload("chebyshev"))
        with_dc = result.whole_program_speedup
        without_dc = (result.static_total_cycles
                      / result.dynamic_total_cycles)
        assert with_dc < without_dc


class TestTables:
    def test_render_alignment(self):
        table = Table(title="T", headers=["a", "bbbb"],
                      rows=[["xx", "y"], ["x", "yyyy"]])
        text = render_table(table)
        lines = text.splitlines()
        assert lines[0] == "T"
        # All rows align to the same width.
        widths = {len(line) for line in lines[2:] if line}
        assert len(widths) <= 2  # header vs data rows may differ by pad

    def test_table1_builds_without_running(self):
        table = build_table1()
        assert len(table.rows) == 10

    def test_applicable_ablations_match_usage(self):
        result = run_workload(get_workload("chebyshev"))
        ablations = applicable_ablations(result, "cheb")
        assert "static_calls" in ablations
        assert "complete_loop_unrolling" in ablations
        assert "dead_assignment_elimination" not in ablations
        assert "polyvariant_division" not in ablations
