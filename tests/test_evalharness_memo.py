"""Memoized + parallel eval-harness: cache correctness and pool/serial
equivalence."""

import dataclasses
import os

import pytest

from repro.config import ALL_ON
from repro.errors import SpecializationError
from repro.evalharness.memo import Memoizer, memo_key, resolve_memo_dir
from repro.evalharness.parallel import (
    resolve_jobs,
    run_ablations,
    run_configs,
)
from repro.evalharness.runner import resolve_backend, run_workload
from repro.machine import ALPHA_21164
from repro.runtime.overhead import DEFAULT_OVERHEAD
from repro.workloads import WORKLOADS_BY_NAME

DOT = WORKLOADS_BY_NAME["dotproduct"]
BINARY = WORKLOADS_BY_NAME["binary"]


def _result_fields(result):
    fields = {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
    }
    fields["workload"] = result.workload.name
    return fields


class TestMemoizer:
    def test_roundtrip(self, tmp_path):
        memo = Memoizer(str(tmp_path))
        cold = run_workload(DOT, memo=memo)
        warm = run_workload(DOT, memo=memo)
        assert warm.workload is DOT
        assert _result_fields(cold) == _result_fields(warm)
        assert warm.region_metrics()[0].asymptotic_speedup == \
            cold.region_metrics()[0].asymptotic_speedup

    def test_key_sensitivity(self):
        base = memo_key(DOT, ALL_ON, ALPHA_21164, DEFAULT_OVERHEAD)
        assert base == memo_key(DOT, ALL_ON, ALPHA_21164,
                                DEFAULT_OVERHEAD)
        assert base != memo_key(
            DOT, ALL_ON.without("strength_reduction"), ALPHA_21164,
            DEFAULT_OVERHEAD,
        )
        assert base != memo_key(
            DOT, ALL_ON, ALPHA_21164.with_overrides(int_mul=9),
            DEFAULT_OVERHEAD,
        )
        assert base != memo_key(BINARY, ALL_ON, ALPHA_21164,
                                DEFAULT_OVERHEAD)

    def test_backend_not_in_key(self, tmp_path):
        """Both backends produce byte-identical stats, so a result
        computed under one backend must be served to the other."""
        memo = Memoizer(str(tmp_path))
        cold = run_workload(DOT, memo=memo, backend="threaded")
        warm = run_workload(DOT, memo=memo, backend="reference")
        assert _result_fields(cold) == _result_fields(warm)

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        memo = Memoizer(str(tmp_path))
        run_workload(DOT, memo=memo)
        [entry] = [p for p in os.listdir(tmp_path)
                   if p.endswith(".pkl")]
        with open(tmp_path / entry, "wb") as fh:
            fh.write(b"not a pickle")
        result = run_workload(DOT, memo=memo)
        assert result.workload is DOT

    def test_specialization_error_memoized(self, tmp_path):
        memo = Memoizer(str(tmp_path))
        config = ALL_ON.without("static_loads")
        mipsi = WORKLOADS_BY_NAME["mipsi"]
        with pytest.raises(SpecializationError):
            run_workload(mipsi, config, memo=memo)
        # Warm path raises straight from the cache marker.
        with pytest.raises(SpecializationError):
            run_workload(mipsi, config, memo=memo)

    def test_memo_dir_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMO_DIR", raising=False)
        assert resolve_memo_dir(None) == ".repro_memo"
        assert resolve_memo_dir("/x/y") == "/x/y"
        monkeypatch.setenv("REPRO_MEMO_DIR", "/from/env")
        assert resolve_memo_dir(None) == "/from/env"


class TestParallel:
    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(None) == 4
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_pool_matches_serial(self, tmp_path):
        tasks = [(DOT.name, ALL_ON), (BINARY.name, ALL_ON)]
        serial = run_configs(tasks, jobs=1)
        pooled = run_configs(tasks, jobs=2,
                             memo=Memoizer(str(tmp_path)))
        for a, b in zip(serial, pooled):
            assert _result_fields(a) == _result_fields(b)

    def test_ablation_worker_fallback(self, tmp_path):
        memo = Memoizer(str(tmp_path))
        [(result, starred)] = run_ablations(
            [("mipsi", "static_loads")], jobs=1, memo=memo
        )
        assert starred is True
        assert not result.config.static_loads
        assert not result.config.complete_loop_unrolling

    def test_progress_callback(self):
        seen = []
        run_configs([(DOT.name, ALL_ON)], jobs=1,
                    progress=lambda name, cfg: seen.append(name))
        assert seen == [DOT.name]


class TestBackendResolution:
    def test_default_is_threaded(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "threaded"
        assert resolve_backend("reference") == "reference"
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        assert resolve_backend(None) == "reference"
        with pytest.raises(ValueError):
            resolve_backend("jit")
