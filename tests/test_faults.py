"""Fault injection and the graceful-degradation ladder.

Covers the registry's trigger modes, spec parsing, every ladder rung at
the runtime level (retry → fallback → quarantine, budget truncation,
cache corruption recovery, threaded-translation degradation), the memo
cache's fault keying, and the supervised harness pool (worker crash /
error / hang recovery, terminal :class:`HarnessError` reporting).
"""

import dataclasses
import os

import pytest

from repro.config import ALL_ON
from repro.errors import (
    FaultConfigError,
    HarnessError,
    SpecializationBudgetError,
    SpecializationError,
)
from repro.evalharness.memo import memo_key
from repro.evalharness.parallel import run_configs
from repro.evalharness.runner import run_workload
from repro.faults import (
    FaultRegistry,
    combine_specs,
    parse_spec,
    resolve_degrade,
    resolve_fault_spec,
)
from repro.machine import ALPHA_21164
from repro.runtime.overhead import DEFAULT_OVERHEAD
from repro.workloads import CHEBYSHEV, DOTPRODUCT, MIPSI


def _config(base=ALL_ON, **overrides):
    return dataclasses.replace(base, **overrides)


def _only_stats(result):
    [stats] = result.region_stats.values()
    return stats


# ----------------------------------------------------------------------
# Registry: parsing and trigger modes
# ----------------------------------------------------------------------

class TestParseSpec:
    def test_empty_and_none(self):
        assert parse_spec(None) == {}
        assert parse_spec("") == {}

    def test_modes(self):
        specs = parse_spec(
            "specializer.entry;emit.template:once;cache.corrupt:at=3;"
            "cache.evict:every=2;worker.error:p=0.25,seed=9;"
            "worker.hang:once,secs=2"
        )
        assert specs["specializer.entry"].mode == "always"
        assert specs["emit.template"].mode == "once"
        assert specs["cache.corrupt"].mode == "at"
        assert specs["cache.corrupt"].n == 3
        assert specs["cache.evict"].mode == "every"
        assert specs["worker.error"].p == 0.25
        assert specs["worker.error"].seed == 9
        assert specs["worker.hang"].secs == 2.0

    def test_later_entry_overrides(self):
        specs = parse_spec("cache.corrupt:once;cache.corrupt:at=5")
        assert specs["cache.corrupt"].mode == "at"
        assert specs["cache.corrupt"].n == 5

    def test_unknown_point_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown fault point"):
            parse_spec("cache.corupt:once")

    def test_unknown_param_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown parameter"):
            parse_spec("cache.corrupt:whenever=3")

    def test_invalid_counts_rejected(self):
        with pytest.raises(FaultConfigError, match="N >= 1"):
            parse_spec("cache.corrupt:at=0")
        with pytest.raises(FaultConfigError, match=r"\[0, 1\]"):
            parse_spec("worker.error:p=1.5")

    def test_combine_specs_drops_empty(self):
        assert combine_specs("a", None, "", "b") == "a;b"


class TestRegistryTriggers:
    def test_always_once_at_every(self):
        reg = FaultRegistry.from_spec(
            "specializer.entry;emit.template:once;"
            "cache.corrupt:at=3;cache.evict:every=2"
        )
        assert [reg.should_fire("specializer.entry")
                for _ in range(3)] == [True, True, True]
        assert [reg.should_fire("emit.template")
                for _ in range(3)] == [True, False, False]
        assert [reg.should_fire("cache.corrupt")
                for _ in range(4)] == [False, False, True, False]
        assert [reg.should_fire("cache.evict")
                for _ in range(4)] == [False, True, False, True]

    def test_unarmed_point_never_fires(self):
        reg = FaultRegistry.from_spec("cache.corrupt:once")
        assert not reg.enabled("cache.evict")
        assert not reg.should_fire("cache.evict")
        assert reg.should_fire("cache.corrupt")

    def test_probabilistic_mode_is_deterministic(self):
        draws = []
        for _ in range(2):
            reg = FaultRegistry.from_spec("worker.error:p=0.5,seed=42")
            draws.append([reg.should_fire("worker.error")
                          for _ in range(64)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])
        other = FaultRegistry.from_spec("worker.error:p=0.5,seed=43")
        assert [other.should_fire("worker.error")
                for _ in range(64)] != draws[0]

    def test_summary_counts_hits_and_fires(self):
        reg = FaultRegistry.from_spec("cache.corrupt:every=2")
        for _ in range(5):
            reg.should_fire("cache.corrupt")
        assert reg.summary() == {"cache.corrupt": (5, 2)}

    def test_param_with_default(self):
        reg = FaultRegistry.from_spec("worker.hang:secs=3")
        assert reg.param("worker.hang", "secs", 30.0) == 3.0
        assert reg.param("worker.crash", "secs", 30.0) == 30.0


class TestResolution:
    def test_env_spec_combines_with_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache.evict:once")
        cfg = _config(faults="cache.corrupt:once")
        assert resolve_fault_spec(cfg) == \
            "cache.corrupt:once;cache.evict:once"

    def test_degrade_auto_on_with_faults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_DEGRADE", raising=False)
        assert not resolve_degrade(ALL_ON)
        assert resolve_degrade(_config(faults="cache.corrupt:once"))
        assert resolve_degrade(_config(degrade=True))
        monkeypatch.setenv("REPRO_DEGRADE", "1")
        assert resolve_degrade(ALL_ON)
        # Explicit off wins over armed faults.
        monkeypatch.setenv("REPRO_DEGRADE", "0")
        assert not resolve_degrade(_config(faults="cache.corrupt:once"))


# ----------------------------------------------------------------------
# The degradation ladder, end to end
# ----------------------------------------------------------------------

LADDER_SPECS = [
    "specializer.entry:once",
    "specializer.continuation:once",
    "emit.template:once",
    "specializer.budget:once",
]


class TestDegradationLadder:
    @pytest.mark.parametrize("spec", LADDER_SPECS)
    @pytest.mark.parametrize("workload", [DOTPRODUCT, CHEBYSHEV],
                             ids=lambda w: w.name)
    def test_single_fault_completes_with_correct_output(
            self, workload, spec):
        result = run_workload(workload, _config(faults=spec),
                              backend="reference")
        assert result.outputs_match

    def test_transient_fault_recovers_by_respecializing(self):
        result = run_workload(
            DOTPRODUCT, _config(faults="specializer.entry:once"),
            backend="reference",
        )
        stats = _only_stats(result)
        assert stats.specialization_failures == 1
        assert stats.respecializations == 1
        assert stats.fallback_executions == 0
        assert result.degraded

    def test_persistent_fault_quarantines_context(self):
        result = run_workload(
            DOTPRODUCT,
            _config(faults="specializer.entry:always",
                    quarantine_after=3),
            backend="reference",
        )
        stats = _only_stats(result)
        assert result.outputs_match
        # Every dispatch degrades to the unspecialized template; after 3
        # consecutive failed (retry included) attempts the context is
        # quarantined and later dispatches skip straight to the fallback.
        assert stats.fallback_executions == stats.dispatches == 60
        assert stats.quarantined_contexts == 1
        assert stats.quarantine_skips == 57
        assert stats.specialization_failures == 6  # 3 × (try + retry)

    def test_no_degradation_with_ladder_forced_off(self, monkeypatch):
        # REPRO_DEGRADE=0 overrides the faults-armed auto-enable: the
        # injected failure must then abort the run, structured fields
        # attached.
        monkeypatch.setenv("REPRO_DEGRADE", "0")
        with pytest.raises(SpecializationError,
                           match="injected fault") as exc:
            run_workload(DOTPRODUCT,
                         _config(faults="specializer.entry:always"),
                         backend="reference")
        assert exc.value.fault_point == "specializer.entry"
        assert exc.value.region_id is not None

    def test_budget_truncation_residualizes(self):
        result = run_workload(
            DOTPRODUCT, _config(specialize_budget=2, degrade=True),
            backend="reference",
        )
        stats = _only_stats(result)
        assert result.outputs_match
        assert stats.budget_truncations >= 1
        assert result.degraded

    def test_budget_fault_collapses_batch(self):
        result = run_workload(
            DOTPRODUCT, _config(faults="specializer.budget:once"),
            backend="reference",
        )
        stats = _only_stats(result)
        assert result.outputs_match
        assert stats.budget_truncations >= 1

    def test_budget_error_without_degrade_is_structured(self):
        with pytest.raises(SpecializationBudgetError,
                           match="exceeded") as exc:
            run_workload(MIPSI, ALL_ON.without("static_loads"),
                         backend="reference")
        assert exc.value.region_id is not None
        assert "region_id" in exc.value.fields()

    def test_promotion_fault_residualizes_continuation(self):
        result = run_workload(
            MIPSI, _config(faults="specializer.continuation:always"),
            backend="reference",
        )
        stats_all = list(result.region_stats.values())
        assert result.outputs_match
        assert sum(s.residualized_continuations for s in stats_all) >= 1

    def test_clean_run_unaffected_by_ladder_plumbing(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_DEGRADE", raising=False)
        result = run_workload(DOTPRODUCT, ALL_ON, backend="reference")
        assert not result.degraded
        stats = _only_stats(result)
        assert stats.specialization_failures == 0
        assert stats.fallback_executions == 0
        assert stats.cache_evictions == 0


class TestCacheFaultsAtRuntime:
    def test_corrupt_entry_triggers_respecialization(self):
        # cache.corrupt needs a checked cache-all policy; dotproduct
        # re-reads its entry cache on each of its 60 dispatches.
        result = run_workload(
            DOTPRODUCT,
            _config(ALL_ON.without("unchecked_dispatching"),
                    faults="cache.corrupt:once"),
            backend="reference",
        )
        stats = _only_stats(result)
        assert result.outputs_match
        assert stats.cache_corruptions == 1
        assert result.degraded

    def test_eviction_fault_is_harmless_on_single_context(self):
        # Every workload here mints exactly one entry specialization, so
        # an insert-time eviction fault finds an empty cache and is a
        # no-op — the run must simply stay correct.  Real evictions are
        # exercised synthetically in test_runtime_cache.py.
        result = run_workload(
            DOTPRODUCT,
            _config(ALL_ON.without("unchecked_dispatching"),
                    faults="cache.evict:always"),
            backend="reference",
        )
        assert result.outputs_match
        assert _only_stats(result).cache_evictions == 0

    def test_bounded_cache_config_keeps_run_correct(self):
        result = run_workload(
            DOTPRODUCT,
            _config(ALL_ON.without("unchecked_dispatching"),
                    cache_capacity=1),
            backend="reference",
        )
        assert result.outputs_match

    def test_unchecked_policy_ignores_cache_faults(self):
        # ALL_ON uses cache-one-unchecked everywhere: no checksum/evict
        # machinery applies, and the run must stay clean.
        result = run_workload(
            DOTPRODUCT, _config(faults="cache.corrupt:always"),
            backend="reference",
        )
        stats = _only_stats(result)
        assert result.outputs_match
        assert stats.cache_corruptions == 0
        assert stats.cache_evictions == 0


class TestThreadedDegradation:
    def test_translation_fault_falls_back_to_interpreter(self):
        clean = run_workload(CHEBYSHEV, ALL_ON, backend="threaded")
        result = run_workload(
            CHEBYSHEV, _config(faults="threaded.translate:every=2"),
            backend="threaded",
        )
        assert result.outputs_match
        # The interpreter fallback is cycle-identical, so the degraded
        # run's statistics match the clean threaded run exactly.
        assert result.dynamic_total_cycles == clean.dynamic_total_cycles
        assert result.dc_cycles == clean.dc_cycles

    @pytest.mark.parametrize("spec", LADDER_SPECS)
    def test_ladder_on_threaded_backend(self, spec):
        result = run_workload(DOTPRODUCT, _config(faults=spec),
                              backend="threaded")
        assert result.outputs_match


# ----------------------------------------------------------------------
# Memo keying
# ----------------------------------------------------------------------

class TestMemoFaultKeying:
    def _key(self, config):
        return memo_key(DOTPRODUCT, config, ALPHA_21164, DEFAULT_OVERHEAD)

    def test_fault_spec_changes_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_DEGRADE", raising=False)
        clean = self._key(ALL_ON)
        assert self._key(_config(faults="cache.corrupt:once")) != clean
        assert self._key(_config(degrade=True)) != clean
        assert self._key(ALL_ON) == clean

    def test_env_faults_change_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_DEGRADE", raising=False)
        clean = self._key(ALL_ON)
        monkeypatch.setenv("REPRO_FAULTS", "specializer.entry:once")
        assert self._key(ALL_ON) != clean
        monkeypatch.delenv("REPRO_FAULTS")
        monkeypatch.setenv("REPRO_DEGRADE", "1")
        assert self._key(ALL_ON) != clean

    def test_memoized_error_round_trips_structure(self, tmp_path):
        from repro.evalharness.memo import Memoizer
        memo = Memoizer(str(tmp_path))
        err = SpecializationBudgetError(
            "region 0: specialization exceeded 7 contexts",
            region_id=0,
        )
        memo.put_error("k", err)
        with pytest.raises(SpecializationBudgetError,
                           match="exceeded") as exc:
            memo.get("k")
        assert exc.value.region_id == 0
        assert str(exc.value) == str(err)


# ----------------------------------------------------------------------
# Supervised harness pool
# ----------------------------------------------------------------------

POOL_TASKS = [(DOTPRODUCT.name, ALL_ON), (CHEBYSHEV.name, ALL_ON)]


class TestPoolSupervision:
    def test_worker_crash_recovers_on_retry(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.crash:always")
        results = run_configs(POOL_TASKS, jobs=2)
        assert [r.workload.name for r in results] == \
            [DOTPRODUCT.name, CHEBYSHEV.name]
        assert all(r.outputs_match for r in results)

    def test_worker_error_recovers_on_retry(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.error:always")
        results = run_configs(POOL_TASKS, jobs=2)
        assert all(r.outputs_match for r in results)

    def test_worker_hang_abandoned_then_recovers(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.hang:always,secs=5")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1")
        results = run_configs(POOL_TASKS, jobs=2)
        assert all(r.outputs_match for r in results)

    def test_serial_path_ignores_worker_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.crash:always")
        results = run_configs(POOL_TASKS, jobs=1)
        assert all(r.outputs_match for r in results)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_terminal_failure_reported_after_sweep(self, monkeypatch,
                                                   jobs):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_DEGRADE", raising=False)
        tasks = [(DOTPRODUCT.name, ALL_ON),
                 (MIPSI.name, ALL_ON.without("static_loads"))]
        with pytest.raises(HarnessError) as exc:
            run_configs(tasks, jobs=jobs)
        message = str(exc.value)
        assert "task 1" in message
        assert "SpecializationBudgetError" in message
        assert len(exc.value.failures) == 1
        assert exc.value.failures[0].index == 1
