"""Tests for the generic dataflow engine and its clients.

Covers the engine itself (directions, boundary pinning, scope,
widening termination), differential equivalence of the framework-ported
liveness and definite-assignment against the legacy reference
implementations on every workload's and example's IR (pre- and
post-optimization), the new reaching/expression analyses, and the
framework-consuming optimizer passes (global CSE, anticipability-gated
LICM hoisting of trapping instructions).
"""

import copy
from pathlib import Path

import pytest

from repro.analysis import (
    BACKWARD,
    DataflowProblem,
    DefSite,
    anticipated_expressions,
    available_expressions,
    definitely_assigned,
    liveness,
    reaching_definitions,
    solve,
)
from repro.analysis.legacy import (
    legacy_definitely_assigned,
    legacy_liveness,
    verify_framework_analyses,
)
from repro.frontend import compile_source
from repro.ir import FunctionBuilder, Op
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import BinOp, Imm, Jump, Move, Reg, Return
from repro.lint.extract import embedded_sources_from_file
from repro.opt import optimize_function
from repro.opt.cse import global_cse
from repro.opt.licm import loop_invariant_code_motion
from repro.workloads import ALL_WORKLOADS
from tests.helpers import build_countdown, build_diamond

EXAMPLES = Path(__file__).parent.parent / "examples"


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------

class TestEngine:
    def test_forward_boundary_is_pinned_to_params(self):
        f = build_countdown()
        assigned = definitely_assigned(f)
        # The loop's back edge re-enters the header, but the entry
        # block's fact stays exactly the parameter set.
        assert assigned[f.entry] == frozenset(f.params)

    def test_backward_boundary_is_empty_at_exits(self):
        f = build_diamond()
        result = liveness(f)
        assert result.live_out["join"] == frozenset()

    def test_results_are_in_program_order(self):
        f = build_diamond()
        result = liveness(f)
        # ``before`` is always the block-entry fact, even for the
        # backward problem: the join block's operands are live on
        # entry while its own result is not.
        assert "y" in result.live_in["join"]
        assert "r" not in result.live_in["join"]

    def test_scope_all_covers_unreachable_blocks(self):
        f = Function(name="orphaned", params=("a",))
        entry = f.new_block("entry")
        entry.instrs.append(Return(Reg("a")))
        orphan = f.new_block("orphan")
        orphan.instrs.append(Return(Reg("ghost")))
        live = liveness(f)
        assert live.live_in["orphan"] == frozenset({"ghost"})
        # The must-analysis is scoped to reachable blocks only.
        assert "orphan" not in definitely_assigned(f)

    def test_visits_counted(self):
        f = build_countdown()
        result = solve(
            f, _CountingProblem()
        )
        # The loop forces at least one block to be visited twice.
        assert result.visits > len(f.blocks)

    def test_widening_terminates_infinite_lattice(self):
        f = build_countdown()
        problem = _CounterProblem()
        result = solve(f, problem)
        # Without widening the +1 transfer around the loop would never
        # converge; the cap makes it terminate and records where.
        assert result.widened
        assert all(value <= _CounterProblem.CAP
                   for value in result.after.values())


class _CountingProblem(DataflowProblem):
    """Trivial union problem used to observe visit counts."""

    def boundary(self, function):
        return frozenset()

    def initial(self, function, label):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, function, label, value):
        return value | {label}


class _CounterProblem(DataflowProblem):
    """Deliberately non-converging int lattice; widening caps it."""

    CAP = 40
    widen_after = 3

    def boundary(self, function):
        return 0

    def initial(self, function, label):
        return 0

    def join(self, a, b):
        return max(a, b)

    def transfer(self, function, label, value):
        return value + 1

    def widen(self, old, new, visits):
        return min(new, self.CAP)


# ----------------------------------------------------------------------
# Differential: framework ports vs. legacy reference implementations
# ----------------------------------------------------------------------

def _corpus_modules():
    cases = []
    for workload in ALL_WORKLOADS:
        cases.append((workload.name, workload.source))
    for path in sorted(EXAMPLES.glob("*.py")):
        for name, text in embedded_sources_from_file(str(path)):
            cases.append((f"{path.name}::{name}", text))
    return cases


CORPUS = _corpus_modules()


class TestDifferential:
    @pytest.mark.parametrize(
        "name,source", CORPUS, ids=[c[0] for c in CORPUS]
    )
    def test_ports_match_legacy_on_corpus(self, name, source):
        module = compile_source(source)
        for function in module.functions.values():
            verify_framework_analyses(function)

    @pytest.mark.parametrize(
        "name,source", CORPUS[:4], ids=[c[0] for c in CORPUS[:4]]
    )
    def test_ports_match_legacy_after_optimization(self, name, source):
        module = compile_source(source)
        for function in module.functions.values():
            optimized = optimize_function(copy.deepcopy(function))
            verify_framework_analyses(optimized)

    def test_liveness_identical_including_unreachable(self):
        f = Function(name="mixed", params=("p",))
        entry = f.new_block("entry")
        entry.instrs.append(Return(Reg("p")))
        orphan = f.new_block("dead")
        orphan.instrs.append(Jump("entry"))
        result = liveness(f)
        ref_in, ref_out = legacy_liveness(f)
        assert dict(result.live_in) == ref_in
        assert dict(result.live_out) == ref_out

    def test_defassign_identical_on_short_circuit_diamond(self):
        # Both arms assign ``v``; neither dominates the join — the
        # intersection join accepts it, matching the legacy sweep.
        b = FunctionBuilder("sc", ("a",))
        b.branch("a", "then", "else")
        b.label("then")
        b.move("v", 1)
        b.jump("join")
        b.label("else")
        b.move("v", 2)
        b.jump("join")
        b.label("join")
        b.ret("v")
        f = b.finish()
        assert definitely_assigned(f) == legacy_definitely_assigned(f)
        assert "v" in definitely_assigned(f)["join"]


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------

class TestReachingDefinitions:
    def test_params_reach_entry(self):
        f = build_diamond()
        result = reaching_definitions(f)
        names = {site.name for site in result.reach_in["entry"]}
        assert set(f.params) <= names
        assert all(site.is_param for site in result.reach_in["entry"]
                   if site.name in f.params)

    def test_redefinition_kills(self):
        b = FunctionBuilder("kill", ("a",))
        b.move("x", 1)
        b.move("x", 2)
        b.ret("x")
        f = b.finish()
        result = reaching_definitions(f)
        exit_sites = result.reach_out["entry"]
        x_sites = [s for s in exit_sites if s.name == "x"]
        assert x_sites == [DefSite("x", "entry", 1)]

    def test_loop_carries_definition_to_header(self):
        f = build_countdown()
        result = reaching_definitions(f)
        # The body's decrement of ``n`` reaches the header via the
        # back edge, alongside the parameter binding.
        header_sites = result.definitions_of(f, "head", 0, "n")
        assert any(not s.is_param for s in header_sites)
        assert any(s.is_param for s in header_sites)

    def test_point_query_walks_block_prefix(self):
        b = FunctionBuilder("pt", ("a",))
        b.move("x", 1)
        b.binop("y", Op.ADD, "x", "a")
        b.ret("y")
        f = b.finish()
        result = reaching_definitions(f)
        sites = result.definitions_of(f, "entry", 1, "x")
        assert sites == frozenset({DefSite("x", "entry", 0)})


# ----------------------------------------------------------------------
# Expression analyses
# ----------------------------------------------------------------------

def _build_while_div():
    """while-shape: the division only runs on iterations, not at exit."""
    b = FunctionBuilder("whl", ("a", "b", "n"))
    b.move("i", 0)
    b.move("q", 0)
    b.jump("head")
    b.label("head")
    b.binop("c", Op.LT, "i", "n")
    b.branch("c", "body", "done")
    b.label("body")
    b.binop("q", Op.DIV, "a", "b")
    b.binop("i", Op.ADD, "i", 1)
    b.jump("head")
    b.label("done")
    b.ret("q")
    return b.finish()


def _build_dowhile_div():
    """do-while shape: every path from the header runs the division."""
    b = FunctionBuilder("dw", ("a", "b", "n"))
    b.move("i", 0)
    b.jump("body")
    b.label("body")
    b.binop("q", Op.DIV, "a", "b")
    b.binop("i", Op.ADD, "i", 1)
    b.binop("c", Op.LT, "i", "n")
    b.branch("c", "body", "done")
    b.label("done")
    b.ret("q")
    return b.finish()


class TestExpressionAnalyses:
    DIV_KEY = ("bin", Op.DIV, Reg("a"), Reg("b"))

    def test_division_not_anticipated_in_while_shape(self):
        f = _build_while_div()
        anticipated = anticipated_expressions(f)
        assert self.DIV_KEY not in anticipated["head"]

    def test_division_anticipated_in_dowhile_shape(self):
        f = _build_dowhile_div()
        anticipated = anticipated_expressions(f)
        assert self.DIV_KEY in anticipated["body"]

    def test_available_requires_all_paths_same_holder(self):
        b = FunctionBuilder("av", ("a", "b", "c"))
        b.branch("c", "then", "else")
        b.label("then")
        b.binop("t", Op.ADD, "a", "b")
        b.jump("join")
        b.label("else")
        b.binop("t", Op.ADD, "a", "b")
        b.jump("join")
        b.label("join")
        b.ret("t")
        f = b.finish()
        available = available_expressions(f)
        key = ("bin", Op.ADD, Reg("a"), Reg("b"))
        assert (key, "t") in available["join"]

    def test_available_dropped_when_holders_differ(self):
        b = FunctionBuilder("av2", ("a", "b", "c"))
        b.branch("c", "then", "else")
        b.label("then")
        b.binop("t1", Op.ADD, "a", "b")
        b.move("r", "t1")
        b.jump("join")
        b.label("else")
        b.binop("t2", Op.ADD, "a", "b")
        b.move("r", "t2")
        b.jump("join")
        b.label("join")
        b.ret("r")
        f = b.finish()
        available = available_expressions(f)
        key = ("bin", Op.ADD, Reg("a"), Reg("b"))
        assert not any(k == key for k, _ in available["join"])

    def test_self_redefinition_generates_nothing(self):
        b = FunctionBuilder("self", ("x",))
        b.binop("x", Op.ADD, "x", 1)
        b.ret("x")
        f = b.finish()
        available = available_expressions(f)
        assert available["entry"] == frozenset()
        # Nothing valid survives the block either.
        result = solve(f, _ProbeAvailable())
        assert result.after["entry"] == frozenset()


class _ProbeAvailable(DataflowProblem):
    def boundary(self, function):
        return frozenset()

    def initial(self, function, label):
        return frozenset()

    def join(self, a, b):
        return a & b

    def transfer(self, function, label, value):
        from repro.analysis.expressions import _AvailableExpressions

        return _AvailableExpressions(function).transfer(
            function, label, value
        )


# ----------------------------------------------------------------------
# Framework-consuming optimizer passes
# ----------------------------------------------------------------------

class TestGlobalCSE:
    def test_reuses_value_across_blocks(self):
        b = FunctionBuilder("gcse", ("a", "b"))
        b.binop("t", Op.ADD, "a", "b")
        b.jump("next")
        b.label("next")
        b.binop("u", Op.ADD, "a", "b")
        b.binop("r", Op.MUL, "t", "u")
        b.ret("r")
        f = b.finish()
        assert global_cse(f)
        recomputed = f.blocks["next"].instrs[0]
        assert isinstance(recomputed, Move)
        assert recomputed.src == Reg("t")

    def test_store_kills_load_reuse_across_blocks(self):
        b = FunctionBuilder("gcse2", ("p",))
        b.load("x", "p")
        b.jump("next")
        b.label("next")
        b.store("p", 0)
        b.load("y", "p")
        b.binop("r", Op.ADD, "x", "y")
        b.ret("r")
        f = b.finish()
        changed = global_cse(f)
        # The second load must survive: the store invalidated it.
        kinds = [type(i).__name__ for i in f.blocks["next"].instrs]
        assert "Load" in kinds
        assert not changed

    def test_does_not_merge_across_diverging_holders(self):
        b = FunctionBuilder("gcse3", ("a", "b", "c"))
        b.branch("c", "then", "else")
        b.label("then")
        b.binop("t1", Op.ADD, "a", "b")
        b.move("r", "t1")
        b.jump("join")
        b.label("else")
        b.binop("t2", Op.ADD, "a", "b")
        b.move("r", "t2")
        b.jump("join")
        b.label("join")
        b.binop("u", Op.ADD, "a", "b")
        b.ret("u")
        f = b.finish()
        changed = global_cse(f)
        assert not changed
        assert isinstance(f.blocks["join"].instrs[0], BinOp)

    def test_execution_preserved(self):
        from tests.helpers import run_function

        b = FunctionBuilder("gcse4", ("a", "b"))
        b.binop("t", Op.ADD, "a", "b")
        b.jump("next")
        b.label("next")
        b.binop("u", Op.ADD, "a", "b")
        b.binop("r", Op.MUL, "t", "u")
        b.ret("r")
        f = b.finish()
        before, _ = run_function(copy.deepcopy(f), 3, 4)
        global_cse(f)
        after, _ = run_function(f, 3, 4)
        assert after == before == 49


class TestAnticipabilityGatedLICM:
    def test_trapping_div_hoisted_from_dowhile(self):
        f = _build_dowhile_div()
        assert loop_invariant_code_motion(f)
        body_ops = [type(i).__name__ for i in f.blocks["body"].instrs]
        assert "BinOp" in body_ops
        assert all(
            not (isinstance(i, BinOp) and i.op is Op.DIV)
            for i in f.blocks["body"].instrs
        )
        hoisted_somewhere = any(
            isinstance(i, BinOp) and i.op is Op.DIV
            for block in f.blocks.values()
            for i in block.instrs
        )
        assert hoisted_somewhere

    def test_trapping_div_stays_in_while_shape(self):
        f = _build_while_div()
        loop_invariant_code_motion(f)
        assert any(
            isinstance(i, BinOp) and i.op is Op.DIV
            for i in f.blocks["body"].instrs
        )

    def test_dowhile_execution_preserved(self):
        from tests.helpers import run_function

        f = _build_dowhile_div()
        expected, _ = run_function(copy.deepcopy(f), 20, 4, 3)
        loop_invariant_code_motion(f)
        got, _ = run_function(f, 20, 4, 3)
        assert got == expected

    def test_liveness_blocks_clobbering_hoist(self):
        # ``x`` is live into the header (used before its in-loop
        # definition on the first iteration), so hoisting the in-loop
        # ``x = a * 2`` would clobber the pre-loop value.
        b = FunctionBuilder("clob", ("a", "n"))
        b.move("x", 7)
        b.move("i", 0)
        b.move("s", 0)
        b.jump("head")
        b.label("head")
        b.binop("s", Op.ADD, "s", "x")
        b.binop("x", Op.MUL, "a", 2)
        b.binop("i", Op.ADD, "i", 1)
        b.binop("c", Op.LT, "i", "n")
        b.branch("c", "head", "done")
        b.label("done")
        b.ret("s")
        f = b.finish()
        from tests.helpers import run_function

        expected, _ = run_function(copy.deepcopy(f), 5, 3)
        loop_invariant_code_motion(f)
        got, _ = run_function(f, 5, 3)
        assert got == expected
        assert any(
            isinstance(i, BinOp) and i.op is Op.MUL
            for i in f.blocks["head"].instrs
        )


# ----------------------------------------------------------------------
# Debug-mode pass verification hooks the differential check in
# ----------------------------------------------------------------------

class TestDebugVerification:
    def test_optimize_function_debug_runs_framework_check(self):
        source = ALL_WORKLOADS[0].source
        module = compile_source(source)
        for function in module.functions.values():
            optimize_function(function, debug=True)  # must not raise
