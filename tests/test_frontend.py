"""Tests for the MiniC lexer, parser, and lowering (with execution checks)."""

import pytest

from repro.errors import LexError, LowerError, ParseError
from repro.frontend import compile_source, parse_program, tokenize
from repro.frontend import ast_nodes as ast
from repro.frontend.tokens import TokenType
from repro.ir import Call, Load, MakeStatic, Memory, verify_module
from repro.machine import Machine


def run(source: str, func: str, *args, memory: Memory | None = None):
    module = compile_source(source)
    machine = Machine(module, memory=memory)
    return machine.run(func, *args)


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("func f(x) { return x + 1; }")
        types = [t.type for t in tokens]
        assert types[0] is TokenType.FUNC
        assert types[-1] is TokenType.EOF

    def test_numbers(self):
        tokens = tokenize("12 3.5 1e3 2.5e-2")
        assert tokens[0].value == 12
        assert tokens[1].value == 3.5
        assert tokens[2].value == 1000.0
        assert tokens[3].value == 0.025

    def test_at_bracket_token(self):
        tokens = tokenize("a@[i]")
        assert tokens[1].type is TokenType.AT_LBRACKET

    def test_comments_skipped(self):
        tokens = tokenize("1 // comment\n /* multi\nline */ 2")
        values = [t.value for t in tokens if t.value is not None]
        assert values == [1, 2]

    def test_line_numbers_track_newlines(self):
        tokens = tokenize("a\nb\n\nc")
        lines = [t.line for t in tokens if t.type is TokenType.IDENT]
        assert lines == [1, 2, 4]

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("/* oops")

    def test_unknown_character_raises(self):
        with pytest.raises(LexError, match="unexpected"):
            tokenize("a $ b")

    def test_two_char_operators(self):
        tokens = tokenize("== != <= >= << >> && ||")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.EQ, TokenType.NE, TokenType.LE, TokenType.GE,
            TokenType.SHL, TokenType.SHR, TokenType.ANDAND, TokenType.OROR,
        ]


class TestParser:
    def test_function_shape(self):
        program = parse_program("func add(a, b) { return a + b; }")
        assert len(program.functions) == 1
        f = program.functions[0]
        assert f.name == "add"
        assert f.params == ("a", "b")
        assert not f.pure

    def test_pure_function(self):
        program = parse_program("pure func sq(x) { return x * x; }")
        assert program.functions[0].pure

    def test_precedence(self):
        program = parse_program("func f() { return 1 + 2 * 3; }")
        ret = program.functions[0].body[0]
        assert isinstance(ret.value, ast.Binary)
        assert ret.value.op == "+"
        assert ret.value.rhs.op == "*"

    def test_make_static_with_policy(self):
        program = parse_program(
            "func f(x) { make_static(x) : cache_one_unchecked; return x; }"
        )
        stmt = program.functions[0].body[0]
        assert isinstance(stmt, ast.MakeStaticStmt)
        assert stmt.policy == "cache_one_unchecked"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ParseError, match="cache policy"):
            parse_program("func f(x) { make_static(x) : bogus; return x; }")

    def test_static_index(self):
        program = parse_program("func f(p) { return p@[2]; }")
        ret = program.functions[0].body[0]
        assert isinstance(ret.value, ast.Index)
        assert ret.value.static

    def test_else_if_chain(self):
        src = """
        func f(x) {
            if (x == 0) { return 10; }
            else if (x == 1) { return 20; }
            else { return 30; }
        }
        """
        program = parse_program(src)
        top = program.functions[0].body[0]
        assert isinstance(top.else_body[0], ast.If)

    def test_for_with_empty_clauses(self):
        program = parse_program("func f() { for (;;) { break; } return 0; }")
        loop = program.functions[0].body[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_assignment_to_static_load_rejected(self):
        with pytest.raises(ParseError, match="static"):
            parse_program("func f(p) { p@[0] = 1; return 0; }")

    def test_missing_semicolon_reports_location(self):
        with pytest.raises(ParseError, match="line"):
            parse_program("func f() { return 1 }")

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse_program("func f() { 1 + 2 = 3; return 0; }")


class TestLoweringAndExecution:
    def test_arithmetic(self):
        assert run("func f(a, b) { return a * b + 2; }", "f", 3, 4) == 14

    def test_if_else(self):
        src = "func f(x) { if (x > 0) { return 1; } return 0 - 1; }"
        assert run(src, "f", 5) == 1
        assert run(src, "f", -5) == -1

    def test_while_loop(self):
        src = """
        func sum_to(n) {
            var s = 0;
            var i = 1;
            while (i <= n) { s = s + i; i = i + 1; }
            return s;
        }
        """
        assert run(src, "sum_to", 100) == 5050

    def test_for_loop_with_break_continue(self):
        src = """
        func f(n) {
            var s = 0;
            for (i = 0; i < n; i = i + 1) {
                if (i == 3) { continue; }
                if (i == 7) { break; }
                s = s + i;
            }
            return s;
        }
        """
        # 0+1+2+4+5+6 = 18
        assert run(src, "f", 100) == 18

    def test_memory_access(self):
        src = """
        func sum(arr, n) {
            var s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + arr[i]; }
            return s;
        }
        """
        mem = Memory()
        base = mem.alloc_array([5, 6, 7])
        assert run(src, "sum", base, 3, memory=mem) == 18

    def test_store_statement(self):
        src = """
        func fill(arr, n) {
            for (i = 0; i < n; i = i + 1) { arr[i] = i * i; }
            return 0;
        }
        """
        mem = Memory()
        base = mem.alloc(4)
        run(src, "fill", base, 4, memory=mem)
        assert mem.read_array(base, 4) == [0, 1, 4, 9]

    def test_short_circuit_and(self):
        # Division by zero on the rhs must not execute when lhs is false.
        src = "func f(x, y) { if (x != 0 && 10 / x > y) { return 1; } return 0; }"
        assert run(src, "f", 0, 1) == 0
        assert run(src, "f", 5, 1) == 1

    def test_short_circuit_or(self):
        src = "func f(x) { if (x == 0 || 10 / x > 100) { return 1; } return 0; }"
        assert run(src, "f", 0) == 1
        assert run(src, "f", 5) == 0

    def test_nested_function_calls(self):
        src = """
        func double(x) { return x * 2; }
        func f(x) { return double(double(x)) + 1; }
        """
        assert run(src, "f", 10) == 41

    def test_recursion(self):
        src = """
        func fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        """
        assert run(src, "fib", 10) == 55

    def test_intrinsic_call_is_marked_pure(self):
        module = compile_source("func f(x) { return cos(x); }")
        calls = [
            i for _, _, i in module.function("f").instructions()
            if isinstance(i, Call)
        ]
        assert calls[0].static

    def test_pure_func_call_marked_static(self):
        src = """
        pure func sq(x) { return x * x; }
        func f(x) { return sq(x); }
        """
        module = compile_source(src)
        calls = [
            i for _, _, i in module.function("f").instructions()
            if isinstance(i, Call)
        ]
        assert calls[0].static

    def test_impure_func_call_not_static(self):
        src = """
        func g(x) { return x; }
        func f(x) { return g(x); }
        """
        module = compile_source(src)
        calls = [
            i for _, _, i in module.function("f").instructions()
            if isinstance(i, Call)
        ]
        assert not calls[0].static

    def test_static_load_lowered_with_flag(self):
        module = compile_source("func f(p) { return p@[1]; }")
        loads = [
            i for _, _, i in module.function("f").instructions()
            if isinstance(i, Load)
        ]
        assert loads[0].static

    def test_make_static_lowered(self):
        module = compile_source(
            "func f(x) { make_static(x) : cache_one_unchecked; return x; }"
        )
        annotations = [
            i for _, _, i in module.function("f").instructions()
            if isinstance(i, MakeStatic)
        ]
        assert annotations[0].names == ("x",)
        assert annotations[0].policy == "cache_one_unchecked"

    def test_break_outside_loop_rejected(self):
        with pytest.raises(LowerError, match="break"):
            compile_source("func f() { break; return 0; }")

    def test_unreachable_code_discarded(self):
        module = compile_source(
            "func f() { return 1; var x = 2; return x; }"
        )
        verify_module(module)

    def test_both_arms_return(self):
        src = "func f(x) { if (x) { return 1; } else { return 2; } }"
        assert run(src, "f", 1) == 1
        assert run(src, "f", 0) == 2

    def test_missing_return_yields_zero(self):
        assert run("func f() { var x = 5; }", "f") == 0

    def test_zero_offset_index_elides_add(self):
        module = compile_source("func f(p) { return p[0]; }")
        instrs = [i for _, _, i in module.function("f").instructions()]
        loads = [i for i in instrs if isinstance(i, Load)]
        assert len(loads) == 1

    def test_unary_operators(self):
        assert run("func f(x) { return -x; }", "f", 4) == -4
        assert run("func f(x) { return !x; }", "f", 4) == 0
        assert run("func f(x) { return !x; }", "f", 0) == 1

    def test_float_arithmetic(self):
        result = run("func f(x) { return x * 2.5; }", "f", 4)
        assert result == 10.0

    def test_whole_pipeline_with_optimizer(self):
        from repro.opt import optimize_module
        src = """
        func f(n) {
            var a = 2 * 3;
            var s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + a; }
            return s;
        }
        """
        module = compile_source(src)
        optimize_module(module)
        verify_module(module)
        machine = Machine(module)
        assert machine.run("f", 10) == 60
