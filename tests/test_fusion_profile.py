"""Tests for the fusion-profile feedback loop (threaded -> pycodegen)."""

import json

import pytest

from repro.evalharness.runner import run_workload
from repro.machine import fusionprofile
from repro.machine.fusionprofile import FusionProfile
from repro.opt.regionshape import region_shape
from repro.serve.protocol import run_fingerprint
from repro.workloads import WORKLOADS_BY_NAME


@pytest.fixture(autouse=True)
def _clean_profile_state(monkeypatch):
    monkeypatch.delenv(fusionprofile.ENV_PROFILE_IN, raising=False)
    fusionprofile.reset()
    yield
    fusionprofile.reset()


class TestFusionProfile:
    def test_record_merge_and_totals(self):
        profile = FusionProfile()
        profile.record("f", "entry", "loop")
        profile.record("f", "entry", "loop", 2)
        profile.record("g", "a", "b")
        assert profile.successors("f") == {"entry": {"loop": 3}}
        assert profile.total_edges == 2   # distinct (src, dst) pairs
        other = FusionProfile()
        other.record("f", "loop", "exit", 5)
        profile.merge(other)
        assert profile.successors("f")["loop"] == {"exit": 5}

    def test_json_round_trip(self, tmp_path):
        profile = FusionProfile()
        profile.record("f", "entry", "loop", 7)
        path = tmp_path / "profile.json"
        profile.save(str(path))
        loaded = FusionProfile.load(str(path))
        assert loaded.successors("f") == {"entry": {"loop": 7}}
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1

    def test_collector_records_threaded_transfers(self):
        collecting = fusionprofile.start_collecting()
        try:
            run_workload(WORKLOADS_BY_NAME["binary"],
                         backend="threaded")
        finally:
            fusionprofile.stop_collecting()
        assert collecting.total_edges > 0

    def test_env_install_degrades_on_missing_file(self, monkeypatch):
        monkeypatch.setenv(fusionprofile.ENV_PROFILE_IN,
                           "/nonexistent/profile.json")
        fusionprofile.reset()
        assert fusionprofile.installed() is None
        assert fusionprofile.successors_for("f") is None

    def test_env_install_loads_profile(self, tmp_path, monkeypatch):
        profile = FusionProfile()
        profile.record("f", "a", "b", 3)
        path = tmp_path / "p.json"
        profile.save(str(path))
        monkeypatch.setenv(fusionprofile.ENV_PROFILE_IN, str(path))
        fusionprofile.reset()
        assert fusionprofile.successors_for("f") == {"a": {"b": 3}}


class TestProfileGuidedLayout:
    def _collect(self, name):
        collecting = fusionprofile.start_collecting()
        try:
            baseline = run_workload(WORKLOADS_BY_NAME[name],
                                    backend="threaded")
        finally:
            fusionprofile.stop_collecting()
        return collecting, baseline

    def test_layout_changes_but_stats_do_not(self):
        profile, baseline = self._collect("binary")
        fusionprofile.install(profile)
        guided = run_workload(WORKLOADS_BY_NAME["binary"],
                              backend="pycodegen")
        # The measured statistics are layout-independent by
        # construction: trace order affects emitted source order only.
        assert run_fingerprint(guided) == run_fingerprint(baseline)

    def test_region_shape_orders_chains_by_heat(self):
        from repro.frontend import compile_source

        source = """
        func pick(x) {
            var r = 0;
            if (x > 0) { r = 1; } else { r = 2; }
            while (r < 10) { r = r + 3; }
            return r;
        }
        func main(x) { return pick(x); }
        """
        module = compile_source(source)
        fn = module.functions["pick"]
        cold = region_shape(fn)
        labels = list(fn.blocks)
        # A profile claiming heavy traffic into the last block should
        # hoist its chain ahead of colder non-entry chains.
        hot = {label: {labels[-1]: 10**6} for label in labels}
        shaped = region_shape(fn, hot)
        assert shaped.order[0] == cold.order[0]  # entry chain pinned
        assert set(shaped.order) == set(cold.order)
