"""Tests for the cache_indexed policy (the §3.1 extension)."""

import pytest

from repro.config import ALL_ON
from repro.dyc import compile_annotated, compile_static
from repro.errors import CacheError
from repro.frontend import compile_source, parse_program
from repro.machine import Machine
from repro.runtime.cache import IndexedCache
from repro.runtime.overhead import DEFAULT_OVERHEAD

SRC = """
func f(x, b) {
    make_static(b) : cache_indexed;
    return x * b + b;
}
"""


class TestIndexedCacheUnit:
    def test_miss_then_hit(self):
        cache = IndexedCache()
        assert not cache.lookup((7,)).hit
        cache.insert((7,), "v7")
        assert cache.lookup((7,)).value == "v7"

    def test_key_verified_unlike_unchecked(self):
        cache = IndexedCache()
        cache.insert((99, 7), "a")     # multi-part key, indexed on 7
        assert cache.lookup((99, 7)).hit
        assert not cache.lookup((100, 7)).hit  # same slot, different key

    def test_slot_refill_counted(self):
        cache = IndexedCache()
        cache.insert((1, 7), "a")
        cache.insert((2, 7), "b")
        assert cache.refills == 1
        assert cache.lookup((2, 7)).value == "b"

    def test_range_enforced(self):
        cache = IndexedCache()
        with pytest.raises(CacheError):
            cache.lookup((256,))
        with pytest.raises(CacheError):
            cache.lookup((-1,))
        with pytest.raises(CacheError):
            cache.lookup((1.5,))
        with pytest.raises(CacheError):
            cache.lookup(())

    def test_single_probe(self):
        cache = IndexedCache()
        cache.insert((3,), "x")
        assert cache.lookup((3,)).probes == 1


class TestIndexedPolicyEndToEnd:
    def test_parser_accepts_policy(self):
        program = parse_program(SRC)
        assert program.functions[0].body[0].policy == "cache_indexed"

    def test_semantics_per_byte(self):
        module = compile_source(SRC)
        static_machine = Machine(compile_static(module))
        compiled = compile_annotated(module)
        machine, runtime = compiled.make_machine()
        for b in (0, 1, 7, 255, 7, 1):
            assert machine.run("f", 3, b) == static_machine.run("f", 3, b)
        stats = runtime.stats.regions[0]
        assert stats.indexed_dispatches == 6
        assert stats.specializations == 4   # distinct byte values

    def test_dispatch_cost_between_unchecked_and_hash(self):
        cost = DEFAULT_OVERHEAD.dispatch_cost("cache_indexed")
        assert DEFAULT_OVERHEAD.dispatch_cost("cache_one_unchecked") \
            < cost < DEFAULT_OVERHEAD.dispatch_cost("cache_all")

    def test_out_of_range_key_raises_at_dispatch(self):
        module = compile_source(SRC)
        compiled = compile_annotated(module)
        machine, _ = compiled.make_machine()
        with pytest.raises(CacheError, match="outside"):
            machine.run("f", 3, 1000)

    def test_unchecked_ablation_does_not_affect_indexed(self):
        # cache_indexed is a *safe* policy; the unchecked-dispatching
        # ablation only coerces cache_one_unchecked.
        module = compile_source(SRC)
        compiled = compile_annotated(
            module, ALL_ON.without("unchecked_dispatching")
        )
        machine, runtime = compiled.make_machine()
        assert machine.run("f", 3, 9) == 36
        assert runtime.stats.regions[0].indexed_dispatches == 1
