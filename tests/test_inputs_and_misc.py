"""Tests for input generators, the public API surface, and misc pieces."""

import pytest

import repro
from repro.workloads.inputs import (
    Lcg,
    address_trace,
    convolution_matrix,
    database_records,
    grayscale_image,
    sparse_vector,
    vertex_stream,
)


class TestLcg:
    def test_deterministic(self):
        a = Lcg(seed=42)
        b = Lcg(seed=42)
        assert [a.next_int(100) for _ in range(20)] == \
            [b.next_int(100) for _ in range(20)]

    def test_bounds(self):
        rng = Lcg()
        for _ in range(200):
            assert 0 <= rng.next_int(17) < 17
            assert 0.0 <= rng.next_float() < 1.0

    def test_choice(self):
        rng = Lcg()
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(20))


class TestGenerators:
    def test_address_trace_locality(self):
        trace = address_trace(1000, seed=3, locality=0.8, stride=4)
        assert len(trace) == 1000
        sequential = sum(
            1 for a, b in zip(trace, trace[1:])
            if (a + 4) % (64 * 1024) == b
        )
        assert sequential > 600   # ~80% sequential

    def test_address_trace_deterministic(self):
        assert address_trace(50, seed=9) == address_trace(50, seed=9)

    def test_convolution_matrix_fractions(self):
        rows = convolution_matrix(11, 11)
        flat = [v for row in rows for v in row]
        assert len(flat) == 121
        ones = sum(1 for v in flat if v == 1.0)
        zeros = sum(1 for v in flat if v == 0.0)
        # Table 1: 9% ones, 83% zeroes.
        assert ones == round(121 * 0.09)
        assert zeros == round(121 * 0.83)

    def test_sparse_vector_density(self):
        vector = sparse_vector(100, 0.9)
        assert len(vector) == 100
        assert sum(1 for v in vector if v == 0.0) == 90
        dense = sparse_vector(100, 0.0)
        assert all(v != 0.0 for v in dense)

    def test_grayscale_image_range(self):
        image = grayscale_image(10, 10)
        assert len(image) == 100
        assert all(0.0 <= v < 256.0 for v in image)

    def test_database_records_shape(self):
        records = database_records(20, 8)
        assert len(records) == 20
        assert all(len(r) == 8 for r in records)
        assert all(0 <= v < 100 for r in records for v in r)

    def test_vertex_stream_homogeneous(self):
        verts = vertex_stream(10)
        assert len(verts) == 40
        assert all(verts[i * 4 + 3] == 1.0 for i in range(10))


class TestPublicApi:
    def test_top_level_exports(self):
        assert callable(repro.compile_source)
        assert callable(repro.compile_annotated)
        assert callable(repro.compile_static)
        assert repro.ALL_ON.complete_loop_unrolling
        assert not repro.ALL_OFF.complete_loop_unrolling
        assert repro.__version__

    def test_minimal_top_level_flow(self):
        module = repro.compile_source(
            "func f(x, n) { make_static(n); return x * n; }"
        )
        compiled = repro.compile_annotated(module)
        machine, runtime = compiled.make_machine()
        assert machine.run("f", 6, 7) == 42

    def test_config_without_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown"):
            repro.ALL_ON.without("frobnication")

    def test_config_enabled_names(self):
        names = repro.ALL_ON.enabled_names()
        assert "complete_loop_unrolling" in names
        assert "check_annotations" not in names
        assert repro.ALL_OFF.enabled_names() == ()


class TestWorkloadCli:
    def test_cli_single_workload(self, capsys):
        from repro.workloads.__main__ import main
        assert main(["query"]) == 0
        out = capsys.readouterr().out
        assert "query" in out
        assert "outputs verified: True" in out

    def test_cli_unknown_workload(self, capsys):
        from repro.workloads.__main__ import main
        assert main(["nonsense"]) == 2


class TestEvalCliPieces:
    def test_dispatch_table_builder(self):
        from repro.evalharness.__main__ import build_dispatch_table
        from repro.evalharness.tables import run_all
        from repro.workloads import QUERY
        results = {"query": run_all(workloads=[QUERY])["query"]}
        table = build_dispatch_table(results)
        assert table.rows
        assert table.rows[0][1] == "cache_one_unchecked"
