"""Unit tests for the IR data structures, builder, printer, and verifier."""

import pytest

from repro.errors import IRError, MemoryFault
from repro.ir import (
    BasicBlock,
    BinOp,
    Branch,
    Call,
    Function,
    FunctionBuilder,
    Imm,
    Jump,
    Load,
    MakeStatic,
    Memory,
    Module,
    Move,
    Op,
    Reg,
    Return,
    Store,
    format_function,
    format_instr,
    verify_function,
)
from tests.helpers import build_countdown, build_diamond


class TestInstructions:
    def test_uses_and_defs_binop(self):
        instr = BinOp("d", Op.ADD, Reg("a"), Imm(3))
        assert instr.uses() == ("a",)
        assert instr.defs() == ("d",)

    def test_uses_and_defs_move_imm(self):
        instr = Move("d", Imm(1.5))
        assert instr.uses() == ()
        assert instr.defs() == ("d",)

    def test_store_has_no_defs(self):
        instr = Store(Reg("p"), Reg("v"))
        assert instr.defs() == ()
        assert set(instr.uses()) == {"p", "v"}

    def test_call_void_has_no_defs(self):
        instr = Call(None, "f", (Reg("x"),))
        assert instr.defs() == ()
        assert instr.uses() == ("x",)

    def test_terminator_successors(self):
        assert Jump("a").successors() == ("a",)
        assert Branch(Reg("c"), "t", "f").successors() == ("t", "f")
        assert Return(None).successors() == ()

    def test_make_static_reports_no_uses(self):
        # Annotations are liveness-transparent: a variable annotated
        # before its first assignment (Figure 2's loop indices) must not
        # appear live at the annotation point.
        instr = MakeStatic(("a", "b"))
        assert instr.uses() == ()
        assert not instr.is_terminator

    def test_instructions_are_hashable_and_comparable(self):
        a = BinOp("d", Op.ADD, Reg("x"), Imm(1))
        b = BinOp("d", Op.ADD, Reg("x"), Imm(1))
        assert a == b
        assert hash(a) == hash(b)


class TestBlocksAndFunctions:
    def test_terminator_accessor(self):
        block = BasicBlock("b", [Move("x", Imm(1)), Jump("b")])
        assert isinstance(block.terminator, Jump)
        assert block.body == [Move("x", Imm(1))]

    def test_empty_block_has_no_terminator(self):
        with pytest.raises(IRError):
            _ = BasicBlock("b").terminator

    def test_duplicate_block_label_rejected(self):
        f = Function("f", ())
        f.new_block("a")
        with pytest.raises(IRError):
            f.new_block("a")

    def test_predecessors(self):
        f = build_diamond()
        preds = f.predecessors()
        assert sorted(preds["join"]) == ["else", "then"]
        assert preds["entry"] == []

    def test_remove_unreachable_blocks(self):
        f = build_diamond()
        orphan = BasicBlock("orphan", [Jump("join")])
        f.add_block(orphan)
        removed = f.remove_unreachable_blocks()
        assert removed == 1
        assert "orphan" not in f.blocks

    def test_instruction_count(self):
        f = build_diamond()
        assert f.instruction_count() == 7


class TestModule:
    def test_main_autodetected(self):
        m = Module()
        m.add_function(Function("main", (), {"e": BasicBlock(
            "e", [Return(None)])}, entry="e"))
        assert m.main == "main"

    def test_duplicate_function_rejected(self):
        m = Module()
        m.add_function(build_diamond())
        with pytest.raises(IRError):
            m.add_function(build_diamond())

    def test_missing_function_lookup(self):
        with pytest.raises(IRError):
            Module().function("nope")


class TestBuilder:
    def test_builds_valid_loop(self):
        f = build_countdown()
        verify_function(f)
        assert f.entry == "entry"
        assert set(f.blocks) == {"entry", "head", "body", "done"}

    def test_rejects_append_after_terminator(self):
        b = FunctionBuilder("f", ())
        b.ret(0)
        with pytest.raises(IRError):
            b.move("x", 1)

    def test_fresh_names_unique(self):
        b = FunctionBuilder("f", ())
        names = {b.fresh_temp() for _ in range(10)}
        assert len(names) == 10

    def test_finish_rejects_open_block(self):
        b = FunctionBuilder("f", ())
        b.move("x", 1)
        with pytest.raises(IRError):
            b.finish()

    def test_operand_coercion(self):
        b = FunctionBuilder("f", ("a",))
        b.binop("x", Op.ADD, "a", 2)
        b.ret("x")
        f = b.finish()
        instr = f.blocks["entry"].instrs[0]
        assert instr.lhs == Reg("a")
        assert instr.rhs == Imm(2)


class TestVerifier:
    def test_accepts_valid(self):
        verify_function(build_diamond())

    def test_rejects_bad_successor(self):
        b = FunctionBuilder("f", ())
        b.jump("nowhere")
        with pytest.raises(IRError, match="nowhere"):
            verify_function(b.function)

    def test_rejects_mid_block_terminator(self):
        f = Function("f", ())
        f.add_block(BasicBlock("e", [Return(None), Move("x", Imm(1)),
                                     Return(None)]))
        with pytest.raises(IRError, match="not the final"):
            verify_function(f)

    def test_rejects_missing_terminator(self):
        f = Function("f", ())
        f.add_block(BasicBlock("e", [Move("x", Imm(1))]))
        with pytest.raises(IRError, match="terminator"):
            verify_function(f)

    def test_rejects_hole_outside_template(self):
        from repro.ir import Hole
        f = Function("f", ())
        f.add_block(BasicBlock("e", [Move("x", Hole("h")), Return(None)]))
        with pytest.raises(IRError, match="hole"):
            verify_function(f)
        verify_function(f, allow_holes=True)


class TestPrinter:
    def test_format_instr_shapes(self):
        assert format_instr(Move("x", Imm(3))) == "x = 3"
        assert format_instr(BinOp("x", Op.MUL, Reg("a"), Reg("b"))) \
            == "x = a mul b"
        assert "load@" in format_instr(Load("x", Reg("p"), static=True))
        assert "branch" in format_instr(Branch(Reg("c"), "a", "b"))

    def test_format_function_contains_all_labels(self):
        text = format_function(build_diamond())
        for label in ("entry", "then", "else", "join"):
            assert f"{label}:" in text


class TestMemory:
    def test_alloc_and_rw(self):
        mem = Memory()
        base = mem.alloc(4, fill=7)
        assert mem.load(base + 3) == 7
        mem.store(base, 42)
        assert mem.load(base) == 42

    def test_alloc_array_and_read(self):
        mem = Memory()
        base = mem.alloc_array([1, 2, 3])
        assert mem.read_array(base, 3) == [1, 2, 3]

    def test_alloc_matrix_row_major(self):
        mem = Memory()
        base = mem.alloc_matrix([[1, 2], [3, 4]])
        assert mem.read_array(base, 4) == [1, 2, 3, 4]

    def test_ragged_matrix_rejected(self):
        with pytest.raises(MemoryFault):
            Memory().alloc_matrix([[1], [2, 3]])

    def test_null_dereference_faults(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.load(0)
        with pytest.raises(MemoryFault):
            mem.store(0, 1)

    def test_out_of_bounds_faults(self):
        mem = Memory()
        base = mem.alloc(2)
        with pytest.raises(MemoryFault):
            mem.load(base + 2)

    def test_float_address_must_be_integral(self):
        mem = Memory()
        base = mem.alloc(4)
        assert mem.load(float(base)) == 0
        with pytest.raises(MemoryFault):
            mem.load(base + 0.5)

    def test_watch_records_violations(self):
        mem = Memory()
        base = mem.alloc(2)
        mem.watch(base)
        mem.store(base + 1, 9)
        assert mem.watch_violations == []
        mem.store(base, 9)
        assert mem.watch_violations == [base]
