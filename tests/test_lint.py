"""Tests for the staged-specialization linter: every diagnostic code
fires on its fixture, seed programs stay clean, the CLI exit protocol
holds, and the compiler's lint gate rejects broken modules."""

import json
from pathlib import Path

import pytest

from repro.config import ALL_ON
from repro.dyc.compiler import DycCompiler
from repro.errors import LintError
from repro.frontend import compile_source
from repro.lint import (
    CODES,
    Severity,
    has_errors,
    lint_module,
    lint_source,
    select_codes,
)
from repro.lint.__main__ import main
from repro.lint.extract import embedded_sources

FIXTURES = Path(__file__).parent / "lint_fixtures"
EXAMPLES = Path(__file__).parent.parent / "examples"

#: fixture file -> the diagnostic its bug was written to trigger.
FIXTURE_CODES = {
    "use_before_def.minic": "DYC001",
    "unresolved_call.minic": "DYC003",
    "dead_annotation.minic": "DYC101",
    "unsafe_unchecked.minic": "DYC102",
    "static_load_store.minic": "DYC103",
    "unbounded_unroll.minic": "DYC104",
    "conflicting_policies.minic": "DYC105",
}


def lint_fixture(name: str, **kwargs):
    return lint_source((FIXTURES / name).read_text(), **kwargs)


class TestFixturesFire:
    @pytest.mark.parametrize("fixture,code", sorted(FIXTURE_CODES.items()))
    def test_fixture_triggers_its_code(self, fixture, code):
        diags = lint_fixture(fixture)
        assert code in {d.code for d in diags}

    @pytest.mark.parametrize("fixture,code", sorted(FIXTURE_CODES.items()))
    def test_severity_matches_code_range(self, fixture, code):
        for diag in lint_fixture(fixture):
            expected = (Severity.ERROR if diag.code < "DYC100"
                        or diag.code >= "DYC200" else Severity.WARNING)
            assert diag.severity is expected

    def test_parse_error_becomes_dyc000(self):
        diags = lint_source("func broken( {")
        assert [d.code for d in diags] == ["DYC000"]
        assert diags[0].severity is Severity.ERROR

    def test_plan_fault_injection_trips_dyc201(self):
        clean = lint_fixture("plan_fault.minic")
        assert clean == []
        corrupted = lint_fixture("plan_fault.minic", inject_plan_fault=True)
        codes = {d.code for d in corrupted}
        assert "DYC201" in codes
        assert all(d.severity is Severity.ERROR
                   for d in corrupted if d.code == "DYC201")

    def test_diagnostics_carry_locations(self):
        diags = lint_fixture("use_before_def.minic")
        diag = next(d for d in diags if d.code == "DYC001")
        assert diag.function == "partial_sum"
        assert diag.block is not None and diag.index is not None
        assert diag.code in diag.format()


class TestSeedProgramsAreClean:
    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES.glob("*.py")), ids=lambda p: p.name
    )
    def test_examples_lint_clean_strict(self, path):
        sources = embedded_sources(path.read_text())
        assert sources, f"{path.name} has no embedded MiniC"
        for _name, text in sources:
            assert lint_source(text) == []


class TestEngine:
    def test_select_filters_by_prefix(self):
        diags = lint_fixture("conflicting_policies.minic")
        assert {d.code for d in diags} == {"DYC102", "DYC105"}
        only_105 = select_codes(diags, ("DYC105",))
        assert {d.code for d in only_105} == {"DYC105"}
        group = select_codes(diags, ("DYC1",))
        assert group == diags

    def test_has_errors_strict_promotes_warnings(self):
        diags = lint_fixture("dead_annotation.minic")
        assert not has_errors(diags)
        assert has_errors(diags, strict=True)

    def test_lint_module_does_not_mutate_input(self):
        source = (FIXTURES / "unbounded_unroll.minic").read_text()
        module = compile_source(source, verify=False)
        before = {
            name: [label for label in fn.blocks]
            for name, fn in module.functions.items()
        }
        lint_module(module, config=ALL_ON)
        after = {
            name: [label for label in fn.blocks]
            for name, fn in module.functions.items()
        }
        assert before == after  # BTA block splitting ran on a copy

    def test_every_code_documented(self):
        emitted = set()
        for fixture in FIXTURE_CODES:
            emitted |= {d.code for d in lint_fixture(fixture)}
        emitted |= {
            d.code
            for d in lint_fixture("plan_fault.minic", inject_plan_fault=True)
        }
        assert emitted <= set(CODES)


class TestCompilerLintGate:
    def test_gate_rejects_error_diagnostics(self):
        import dataclasses

        source = (FIXTURES / "use_before_def.minic").read_text()
        module = compile_source(source, verify=False)
        compiler = DycCompiler(dataclasses.replace(ALL_ON, lint=True))
        with pytest.raises(LintError) as excinfo:
            compiler.compile(module)
        assert any(d.code == "DYC001" for d in excinfo.value.diagnostics)

    def test_gate_passes_warnings_and_clean_modules(self):
        import dataclasses

        config = dataclasses.replace(ALL_ON, lint=True)
        for fixture in ("dead_annotation.minic", "plan_fault.minic"):
            module = compile_source(
                (FIXTURES / fixture).read_text(), verify=False
            )
            compiled = DycCompiler(config).compile(module)
            assert compiled.module is not module  # still deep-copied

    def test_gate_off_by_default(self):
        source = (FIXTURES / "dead_annotation.minic").read_text()
        module = compile_source(source, verify=False)
        DycCompiler(ALL_ON).compile(module)  # no LintError


class TestCommandLine:
    def test_error_fixture_exits_nonzero(self):
        assert main([str(FIXTURES / "use_before_def.minic")]) == 1

    def test_warning_fixture_exits_zero_unless_strict(self):
        path = str(FIXTURES / "dead_annotation.minic")
        assert main([path]) == 0
        assert main(["--strict", path]) == 1

    def test_clean_fixture_exits_zero_even_strict(self):
        assert main(["--strict", str(FIXTURES / "plan_fault.minic")]) == 0

    def test_inject_plan_fault_flag(self):
        path = str(FIXTURES / "plan_fault.minic")
        assert main(["--inject-plan-fault", path]) == 1

    def test_python_files_with_embedded_minic(self):
        assert main(["--strict", str(EXAMPLES / "quickstart.py")]) == 0

    def test_json_output(self, capsys):
        code = main(["--json", str(FIXTURES / "unresolved_call.minic")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert payload["programs_checked"] == 1
        assert payload["wall_time_seconds"] >= 0
        diags = payload["diagnostics"]
        assert diags and diags[0]["code"] == "DYC003"
        assert diags[0]["severity"] == "error"
        assert "end_index" in diags[0]
        assert diags[0]["source"].endswith("unresolved_call.minic")

    def test_select_limits_output(self, capsys):
        path = str(FIXTURES / "conflicting_policies.minic")
        assert main(["--select", "DYC105", "--strict", path]) == 1
        out = capsys.readouterr().out
        assert "DYC105" in out and "DYC102" not in out

    def test_usage_errors(self):
        assert main([]) == 2
        assert main(["--select", "NOPE", "x.minic"]) == 2

    def test_codes_table(self, capsys):
        assert main(["--codes"]) == 0
        out = capsys.readouterr().out
        for code in CODES:
            assert code in out


class TestEmbeddedExtraction:
    def test_finds_toplevel_string_programs(self):
        text = (
            'SOURCE = """\nfunc f(x) { return x; }\n"""\n'
            "OTHER = 42\n"
            'DOC = "no minic here"\n'
        )
        found = embedded_sources(text)
        assert len(found) == 1
        name, body = found[0]
        assert name == "SOURCE"
        assert "func f" in body

    def test_examples_all_have_sources(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            assert embedded_sources(path.read_text()), path.name


class TestCodegenBudget:
    """DYC210: the emitted-source size estimate, armed only when a
    codegen_source_budget is configured."""

    def _config(self, **overrides):
        import dataclasses

        return dataclasses.replace(ALL_ON, **overrides)

    def test_disabled_by_default(self):
        diags = lint_fixture("codegen_budget.minic")
        assert "DYC210" not in {d.code for d in diags}

    def test_unbounded_unroll_blows_budget(self):
        diags = lint_fixture(
            "codegen_budget.minic",
            config=self._config(codegen_source_budget=10_000),
        )
        hits = [d for d in diags if d.code == "DYC210"]
        assert len(hits) == 1
        assert hits[0].severity is Severity.WARNING
        assert hits[0].function == "polysum"
        assert "specialize_budget" in hits[0].message

    def test_bounded_unroll_fits(self):
        diags = lint_fixture(
            "codegen_budget.minic",
            config=self._config(codegen_source_budget=1_000_000,
                                specialize_budget=4),
        )
        assert "DYC210" not in {d.code for d in diags}

    def test_no_unroll_disables_multiplier(self):
        diags = lint_fixture(
            "codegen_budget.minic",
            config=self._config(codegen_source_budget=10_000,
                                complete_loop_unrolling=False),
        )
        assert "DYC210" not in {d.code for d in diags}

    def test_cli_flag_arms_check(self, capsys):
        path = str(FIXTURES / "codegen_budget.minic")
        assert main([path]) == 0
        assert main(["--codegen-budget", "10000", path]) == 0
        out = capsys.readouterr().out
        assert "DYC210" in out
        assert main(["--strict", "--codegen-budget", "10000", path]) == 1
