"""Tests for the interprocedural specialization-safety prover (DYC3xx):
each diagnostic fires on its fixture and stays silent on the paired
near-miss, the prover is opt-in, the workload corpus stays clean under
it, and the CLI flag / range selectors behave."""

from pathlib import Path

import pytest

from repro.lint import Severity, lint_source, select_codes
from repro.lint.__main__ import main
from repro.lint.diagnostics import Diagnostic
from repro.lint.extract import embedded_sources_from_file

FIXTURES = Path(__file__).parent / "lint_fixtures"
EXAMPLES = Path(__file__).parent.parent / "examples"
WORKLOADS = Path(__file__).parent.parent / "src" / "repro" / "workloads"

#: positive fixture -> (expected code, paired near-miss fixture).
INTERPROC_CASES = {
    "interproc_escape.minic": ("DYC301", "interproc_escape_readonly.minic"),
    "unbounded_cache.minic": ("DYC302", "unbounded_cache_unchecked.minic"),
    "loop_annotation.minic": ("DYC303", "loop_annotation_dominating.minic"),
    "impure_static_call.minic": ("DYC304", "impure_static_call_reader.minic"),
}


def lint_fixture(name: str, **kwargs):
    return lint_source((FIXTURES / name).read_text(), **kwargs)


class TestProverFixtures:
    @pytest.mark.parametrize("fixture,code",
                             sorted((f, c) for f, (c, _)
                                    in INTERPROC_CASES.items()))
    def test_positive_fixture_fires(self, fixture, code):
        diags = lint_fixture(fixture, interprocedural=True)
        assert code in {d.code for d in diags}

    @pytest.mark.parametrize("fixture,code",
                             sorted((n, c) for _, (c, n)
                                    in INTERPROC_CASES.items()))
    def test_near_miss_stays_silent(self, fixture, code):
        diags = lint_fixture(fixture, interprocedural=True)
        assert code not in {d.code for d in diags}

    @pytest.mark.parametrize("fixture", sorted(INTERPROC_CASES))
    def test_prover_is_opt_in(self, fixture):
        """Without the flag no DYC3xx appears — default behavior and
        cost are unchanged."""
        diags = lint_fixture(fixture)
        assert not any(d.code.startswith("DYC3") for d in diags)

    @pytest.mark.parametrize("fixture", sorted(INTERPROC_CASES))
    def test_prover_diagnostics_are_warnings(self, fixture):
        for diag in lint_fixture(fixture, interprocedural=True):
            if diag.code.startswith("DYC3"):
                assert diag.severity is Severity.WARNING
                assert diag.function is not None


class TestCorpusCleanInterprocedural:
    @pytest.mark.parametrize(
        "path",
        sorted(list(EXAMPLES.glob("*.py")) + list(WORKLOADS.glob("*.py"))),
        ids=lambda p: p.stem)
    def test_corpus_clean_under_prover(self, path):
        for name, source in embedded_sources_from_file(path):
            diags = lint_source(source, interprocedural=True)
            assert diags == [], (
                f"{path.name}:{name} -> "
                f"{[d.format() for d in diags]}")


class TestDiagnosticSpans:
    def test_span_defaults_to_single_instruction(self):
        diag = Diagnostic(code="DYC301", severity=Severity.WARNING,
                          message="m", function="f", block="entry",
                          index=3)
        assert diag.span() == (3, 4)
        assert diag.end_index is None
        assert "[3]" in diag.location()

    def test_span_with_explicit_end(self):
        diag = Diagnostic(code="DYC301", severity=Severity.WARNING,
                          message="m", function="f", block="entry",
                          index=3, end_index=6)
        assert diag.span() == (3, 6)
        assert "[3:6]" in diag.location()
        assert diag.to_json()["end_index"] == 6

    def test_select_accepts_ranges(self):
        diags = [
            Diagnostic(code="DYC001", severity=Severity.ERROR, message="a"),
            Diagnostic(code="DYC104", severity=Severity.WARNING, message="b"),
            Diagnostic(code="DYC302", severity=Severity.WARNING, message="c"),
        ]
        picked = select_codes(diags, ("DYC100-DYC199",))
        assert [d.code for d in picked] == ["DYC104"]
        picked = select_codes(diags, ("DYC100-DYC199", "DYC3"))
        assert [d.code for d in picked] == ["DYC104", "DYC302"]


class TestCommandLine:
    def test_interprocedural_flag_surfaces_warnings(self):
        path = str(FIXTURES / "interproc_escape.minic")
        assert main([path]) == 0
        assert main(["--interprocedural", path]) == 0
        assert main(["--strict", "--interprocedural", path]) == 1

    def test_select_range_on_cli(self, capsys):
        path = str(FIXTURES / "unbounded_cache.minic")
        code = main(["--interprocedural", "--strict",
                     "--select", "DYC300-DYC399", path])
        assert code == 1
        out = capsys.readouterr().out
        assert "DYC302" in out and "DYC104" not in out

    def test_invalid_range_rejected(self):
        assert main(["--select", "DYC900-DYC999", "x.minic"]) == 2
        assert main(["--select", "100-199", "x.minic"]) == 2

    def test_corpus_clean_via_cli(self):
        paths = [str(p) for p in sorted(EXAMPLES.glob("*.py"))]
        paths += [str(p) for p in sorted(WORKLOADS.glob("*.py"))]
        assert main(["--strict", "--interprocedural"] + paths) == 0
