"""Tests for the abstract machine: execution, cycle accounting, I-cache."""

import pytest

from repro.errors import MachineError, TrapError
from repro.ir import FunctionBuilder, Memory, Module, Op
from repro.machine import ALPHA_21164, ICacheModel, Machine
from repro.machine.costs import CostModel
from tests.helpers import build_countdown, build_diamond, run_function


class TestExecution:
    def test_countdown(self):
        result, _ = run_function(build_countdown(), 10)
        assert result == 55

    def test_diamond_both_arms(self):
        f = build_diamond()
        assert run_function(f, 0)[0] == 2
        assert run_function(f, 3)[0] == 4

    def test_memory_roundtrip(self):
        b = FunctionBuilder("f", ("p",))
        b.store("p", 41)
        b.load("x", "p")
        b.binop("x", Op.ADD, "x", 1)
        b.ret("x")
        mem = Memory()
        base = mem.alloc(1)
        result, _ = run_function(b.finish(), base, memory=mem)
        assert result == 42
        assert mem.load(base) == 41

    def test_function_calls(self):
        mod = Module()
        b = FunctionBuilder("square", ("x",))
        b.binop("r", Op.MUL, "x", "x")
        b.ret("r")
        mod.add_function(b.finish())
        b = FunctionBuilder("main", ("n",))
        b.call("s", "square", ["n"])
        b.binop("r", Op.ADD, "s", 1)
        b.ret("r")
        mod.add_function(b.finish())
        machine = Machine(mod)
        assert machine.run("main", 6) == 37

    def test_intrinsic_call(self):
        b = FunctionBuilder("f", ())
        b.call("c", "cos", [0.0])
        b.ret("c")
        result, _ = run_function(b.finish())
        assert result == 1.0

    def test_print_val_collects_output(self):
        b = FunctionBuilder("f", ())
        b.call(None, "print_val", [7])
        b.call(None, "print_val", [8])
        b.ret(0)
        _, machine = run_function(b.finish())
        assert machine.output == [7, 8]

    def test_unknown_function_raises(self):
        b = FunctionBuilder("f", ())
        b.call("x", "no_such_fn", [])
        b.ret(0)
        with pytest.raises(MachineError, match="no_such_fn"):
            run_function(b.finish())

    def test_undefined_variable_traps(self):
        b = FunctionBuilder("f", ())
        b.ret("never_defined")
        with pytest.raises(TrapError, match="never_defined"):
            run_function(b.finish())

    def test_wrong_arity_raises(self):
        f = build_diamond()
        mod = Module()
        mod.add_function(f)
        with pytest.raises(MachineError, match="takes 1"):
            Machine(mod).run("diamond", 1, 2)

    def test_step_limit_catches_infinite_loop(self):
        b = FunctionBuilder("f", ())
        b.jump("spin")
        b.label("spin")
        b.jump("spin")
        mod = Module()
        mod.add_function(b.finish())
        machine = Machine(mod, step_limit=1000)
        with pytest.raises(MachineError, match="step limit"):
            machine.run("f")

    def test_recursion_depth_guard(self):
        b = FunctionBuilder("f", ("n",))
        b.call("r", "f", ["n"])
        b.ret("r")
        mod = Module()
        mod.add_function(b.finish())
        with pytest.raises(MachineError, match="depth"):
            Machine(mod).run("f", 1)


class TestCycleAccounting:
    def test_cycles_scale_with_iterations(self):
        f = build_countdown()
        _, m10 = run_function(f, 10)
        _, m20 = run_function(f, 20)
        delta10 = m10.stats.cycles
        delta20 = m20.stats.cycles
        assert delta20 > delta10
        # Per-iteration cost is constant: doubling n roughly doubles cycles.
        assert delta20 / delta10 == pytest.approx(2.0, rel=0.2)

    def test_float_ops_cost_more_than_int(self):
        def build(value):
            b = FunctionBuilder("f", ())
            b.move("a", value)
            b.binop("r", Op.MUL, "a", "a")
            b.ret("r")
            return b.finish()

        _, m_int = run_function(build(3))
        _, m_float = run_function(build(3.0))
        # Integer multiply is slower than FP multiply on this model, but
        # FP moves cost as much as FP multiplies (the §2.2.7 property).
        model = ALPHA_21164
        assert model.move_fp == model.fp_mul

    def test_instruction_count(self):
        b = FunctionBuilder("f", ())
        b.move("a", 1)
        b.binop("b", Op.ADD, "a", 1)
        b.ret("b")
        _, machine = run_function(b.finish())
        assert machine.stats.instructions == 3

    def test_annotations_execute_for_free(self):
        b1 = FunctionBuilder("f", ("x",))
        b1.make_static("x")
        b1.ret("x")
        b2 = FunctionBuilder("f", ("x",))
        b2.ret("x")
        _, with_ann = run_function(b1.finish(), 1)
        _, without = run_function(b2.finish(), 1)
        assert with_ann.stats.cycles == without.stats.cycles

    def test_tracked_scope_attribution(self):
        mod = Module()
        inner = FunctionBuilder("inner", ("n",))
        inner.binop("r", Op.MUL, "n", "n")
        inner.ret("r")
        mod.add_function(inner.finish())
        outer = FunctionBuilder("main", ())
        outer.call("a", "inner", [3])
        outer.binop("b", Op.ADD, "a", 1)
        outer.ret("b")
        mod.add_function(outer.finish())
        machine = Machine(mod, tracked={"inner"})
        machine.run("main")
        assert 0 < machine.stats.scope_cycles["inner"] < machine.stats.cycles
        assert machine.stats.scope_entries["inner"] == 1

    def test_cost_model_overrides(self):
        model = ALPHA_21164.with_overrides(int_mul=100)
        b = FunctionBuilder("f", ("x",))
        b.binop("r", Op.MUL, "x", "x")
        b.ret("r")
        mod = Module()
        mod.add_function(b.finish())
        expensive = Machine(mod, cost_model=model)
        expensive.run("f", 3)
        cheap = Machine(mod)
        cheap.run("f", 3)
        assert expensive.stats.cycles > cheap.stats.cycles


class TestICacheModel:
    def test_no_penalty_under_capacity(self):
        model = ICacheModel()
        assert model.per_instruction_penalty(100) == 0.0
        assert model.per_instruction_penalty(
            model.capacity_instructions) == 0.0

    def test_graded_penalty_above_capacity(self):
        model = ICacheModel()
        cap = model.capacity_instructions
        small = model.per_instruction_penalty(int(cap * 1.2))
        large = model.per_instruction_penalty(int(cap * 2.0))
        assert 0 < small < large
        assert large == model.per_instruction_penalty(cap * 10)  # saturates

    def test_capacity_matches_21164(self):
        model = ICacheModel()
        assert model.capacity_bytes == 8 * 1024
        assert model.capacity_instructions == 2048
        assert model.instructions_per_line == 8

    def test_penalty_slows_execution(self):
        # Same code, two machines: one with a tiny I-cache.
        f = build_countdown()
        mod = Module()
        mod.add_function(f)
        normal = Machine(mod)
        normal.run("countdown", 50)
        tiny = Machine(mod, icache=ICacheModel(capacity_bytes=16))
        tiny.run("countdown", 50)
        assert tiny.stats.cycles > normal.stats.cycles


class TestCostModel:
    def test_fp_move_costs_fp_mul(self):
        # The paper's motivating 21164 property (§2.2.7).
        assert ALPHA_21164.move_fp == ALPHA_21164.fp_mul

    def test_strength_reduction_is_profitable(self):
        # Shifts must beat integer multiplies for SR to matter.
        assert ALPHA_21164.int_alu < ALPHA_21164.int_mul
        assert ALPHA_21164.int_alu < ALPHA_21164.int_div

    def test_binop_cost_classification(self):
        m = CostModel()
        assert m.binop_cost("mul", False) == m.int_mul
        assert m.binop_cost("mul", True) == m.fp_mul
        assert m.binop_cost("div", False) == m.int_div
        assert m.binop_cost("add", False) == m.int_alu
        assert m.binop_cost("add", True) == m.fp_alu

    def test_intrinsic_cost_default(self):
        m = CostModel()
        assert m.intrinsic_cost("cos") == 80
        assert m.intrinsic_cost("unknown_thing") == m.intrinsic_default


class TestRecursionGuard:
    def test_one_shot_and_headroom(self):
        from repro.machine import interp

        # Any machine constructed by the suite so far has armed the
        # guard; building one more must keep it armed and leave the
        # process limit at (or above) the required headroom.
        mod = Module()
        b = FunctionBuilder("f", ())
        b.ret(0)
        mod.add_function(b.finish())
        Machine(mod)
        assert interp._recursion_guard_done is True
        import sys
        assert sys.getrecursionlimit() >= interp._RECURSION_HEADROOM
        limit = sys.getrecursionlimit()
        Machine(mod)  # second construction must not touch the limit
        assert sys.getrecursionlimit() == limit


class TestScopeAccounting:
    def _recursive_module(self):
        mod = Module()
        b = FunctionBuilder("fib", ("n",))
        b.binop("c", Op.LT, "n", 2)
        b.branch("c", "base", "rec")
        b.label("base")
        b.ret("n")
        b.label("rec")
        b.binop("a", Op.SUB, "n", 1)
        b.call("x", "fib", ["a"])
        b.binop("b", Op.SUB, "n", 2)
        b.call("y", "fib", ["b"])
        b.binop("r", Op.ADD, "x", "y")
        b.ret("r")
        mod.add_function(b.finish())
        return mod

    def test_recursive_tracked_scope_counts_once(self):
        """Scope cycles for a recursive function are attributed via an
        outermost-entry snapshot: the total equals the machine's whole
        cycle count spent inside the call, not a double count."""
        mod = self._recursive_module()
        machine = Machine(mod, tracked=frozenset({"fib"}))
        assert machine.run("fib", 10) == 55
        scope = machine.stats.scope_cycles["fib"]
        assert scope == pytest.approx(machine.stats.cycles)
        # Entries count every call (177 for fib(10)); only the cycle
        # attribution is snapshotted at the outermost entry.
        assert machine.stats.scope_entries["fib"] == 177

    def test_tracked_scope_matches_across_backends(self):
        totals = {}
        for backend in ("reference", "threaded"):
            mod = self._recursive_module()
            machine = Machine(mod, tracked=frozenset({"fib"}),
                              backend=backend)
            machine.run("fib", 12)
            totals[backend] = (
                machine.stats.cycles,
                machine.stats.scope_cycles["fib"],
                machine.stats.scope_entries["fib"],
            )
        assert totals["reference"] == totals["threaded"]
