"""Tests for the optional loop-invariant code motion pass."""

import copy

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.ir import BinOp, Load, Memory, Op, verify_function
from repro.opt import optimize_function
from repro.opt.licm import loop_invariant_code_motion
from tests.helpers import run_function


def function_of(src: str, name: str = "f"):
    module = compile_source(src)
    function = module.function(name)
    optimize_function(function)
    return function


def loop_body_instrs(function):
    from repro.analysis.cfg import natural_loops
    instrs = []
    for loop in natural_loops(function):
        for label in loop.body:
            instrs.extend(function.blocks[label].instrs)
    return instrs


class TestLicm:
    SRC = """
    func f(a, b, n) {
        var s = 0;
        for (i = 0; i < n; i = i + 1) {
            var k = a * b;
            s = s + k + i;
        }
        return s;
    }
    """

    def test_hoists_invariant_multiply(self):
        function = function_of(self.SRC)
        assert loop_invariant_code_motion(function)
        verify_function(function)
        muls = [
            i for i in loop_body_instrs(function)
            if isinstance(i, BinOp) and i.op is Op.MUL
        ]
        assert not muls

    def test_semantics_preserved(self):
        function = function_of(self.SRC)
        baseline = copy.deepcopy(function)
        loop_invariant_code_motion(function)
        for args in ((3, 4, 5), (2, 2, 0), (7, 1, 10)):
            assert run_function(function, *args)[0] == \
                run_function(baseline, *args)[0]

    def test_hoisting_reduces_cycles(self):
        function = function_of(self.SRC)
        baseline = copy.deepcopy(function)
        loop_invariant_code_motion(function)
        _, fast = run_function(function, 3, 4, 20)
        _, slow = run_function(baseline, 3, 4, 20)
        assert fast.stats.cycles < slow.stats.cycles

    def test_variant_computation_not_hoisted(self):
        src = """
        func f(a, n) {
            var s = 0;
            for (i = 0; i < n; i = i + 1) {
                var k = a * i;
                s = s + k;
            }
            return s;
        }
        """
        function = function_of(src)
        loop_invariant_code_motion(function)
        muls = [
            i for i in loop_body_instrs(function)
            if isinstance(i, BinOp) and i.op is Op.MUL
        ]
        assert muls  # i-dependent multiply must stay

    def test_load_not_hoisted_past_stores(self):
        src = """
        func f(p, n) {
            var s = 0;
            for (i = 0; i < n; i = i + 1) {
                var v = p[0];
                p[1] = v + i;
                s = s + v;
            }
            return s;
        }
        """
        function = function_of(src)
        loop_invariant_code_motion(function)
        loads = [
            i for i in loop_body_instrs(function) if isinstance(i, Load)
        ]
        assert loads  # the loop stores: the load must not move

    def test_load_hoisted_from_pure_loop(self):
        src = """
        func f(p, n) {
            var s = 0;
            for (i = 0; i < n; i = i + 1) {
                s = s + p[0];
            }
            return s;
        }
        """
        function = function_of(src)
        assert loop_invariant_code_motion(function)
        mem = Memory()
        p = mem.alloc_array([5])
        result, _ = run_function(function, p, 4, memory=mem)
        assert result == 20

    def test_trapping_op_not_hoisted_past_zero_trip_guard(self):
        # Hoisting a/b out of a loop that runs zero times must not
        # introduce a division-by-zero trap.
        src = """
        func f(a, b, n) {
            var s = 0;
            for (i = 0; i < n; i = i + 1) {
                var k = a / b;
                s = s + k;
            }
            return s;
        }
        """
        function = function_of(src)
        loop_invariant_code_motion(function)
        verify_function(function)
        # b == 0 with n == 0: the original never divides.
        result, _ = run_function(function, 4, 0, 0)
        assert result == 0
        # And it still computes correctly when the loop does run.
        assert run_function(function, 9, 3, 4)[0] == 12

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=-10, max_value=10),
           st.integers(min_value=-10, max_value=10),
           st.integers(min_value=0, max_value=12))
    def test_property_equivalence(self, a, b, n):
        function = function_of(self.SRC)
        baseline = copy.deepcopy(function)
        loop_invariant_code_motion(function)
        assert run_function(function, a, b, n)[0] == \
            run_function(baseline, a, b, n)[0]
