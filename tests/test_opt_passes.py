"""Tests for the traditional optimization passes and the pipeline."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import (
    BinOp,
    Branch,
    FunctionBuilder,
    Imm,
    Jump,
    Load,
    Move,
    Op,
    Reg,
    Return,
    verify_function,
)
from repro.opt import (
    PassManager,
    constant_propagation,
    copy_propagation,
    dead_code_elimination,
    local_cse,
    optimize_function,
    simplify_cfg,
)
from tests.helpers import build_countdown, run_function


def _flat_instrs(function):
    return [i for block in function.blocks.values() for i in block.instrs]


class TestConstantPropagation:
    def test_folds_straightline_arithmetic(self):
        b = FunctionBuilder("f", ())
        b.move("a", 3)
        b.move("b", 4)
        b.binop("c", Op.MUL, "a", "b")
        b.ret("c")
        f = b.finish()
        assert constant_propagation(f)
        assert Return(Imm(12)) in _flat_instrs(f)

    def test_folds_branch_to_jump(self):
        b = FunctionBuilder("f", ())
        b.move("c", 1)
        b.branch("c", "t", "e")
        b.label("t")
        b.ret(1)
        b.label("e")
        b.ret(2)
        f = b.finish()
        constant_propagation(f)
        assert "e" not in f.blocks  # unreachable arm removed

    def test_constant_survives_join_when_equal(self):
        b = FunctionBuilder("f", ("x",))
        b.branch("x", "t", "e")
        b.label("t")
        b.move("k", 5)
        b.jump("j")
        b.label("e")
        b.move("k", 5)
        b.jump("j")
        b.label("j")
        b.binop("r", Op.ADD, "k", 1)
        b.ret("r")
        f = b.finish()
        constant_propagation(f)
        assert Return(Imm(6)) in _flat_instrs(f) or \
            Move("r", Imm(6)) in _flat_instrs(f)

    def test_conflicting_join_not_folded(self):
        b = FunctionBuilder("f", ("x",))
        b.branch("x", "t", "e")
        b.label("t")
        b.move("k", 5)
        b.jump("j")
        b.label("e")
        b.move("k", 6)
        b.jump("j")
        b.label("j")
        b.ret("k")
        f = b.finish()
        constant_propagation(f)
        assert Return(Reg("k")) in _flat_instrs(f)

    def test_loop_variant_not_folded(self):
        f = build_countdown()
        constant_propagation(f)
        (result, _) = run_function(f, 5)
        assert result == 15

    def test_does_not_fold_trapping_expression(self):
        b = FunctionBuilder("f", ("x",))
        b.move("z", 0)
        b.binop("d", Op.DIV, "x", "z")  # traps at run time, not compile time
        b.ret("d")
        f = b.finish()
        constant_propagation(f)
        assert any(isinstance(i, BinOp) and i.op is Op.DIV
                   for i in _flat_instrs(f))


class TestCopyPropagation:
    def test_chases_copy_chains(self):
        b = FunctionBuilder("f", ("a",))
        b.move("b", "a")
        b.move("c", "b")
        b.binop("r", Op.ADD, "c", "c")
        b.ret("r")
        f = b.finish()
        assert copy_propagation(f)
        adds = [i for i in _flat_instrs(f) if isinstance(i, BinOp)]
        assert adds[0].lhs == Reg("a") and adds[0].rhs == Reg("a")

    def test_kill_on_source_redefinition(self):
        b = FunctionBuilder("f", ("a",))
        b.move("b", "a")
        b.binop("a", Op.ADD, "a", 1)   # a changes: b != a now
        b.ret("b")
        f = b.finish()
        copy_propagation(f)
        assert Return(Reg("b")) in _flat_instrs(f)

    def test_semantics_preserved(self):
        b = FunctionBuilder("f", ("a",))
        b.move("b", "a")
        b.binop("c", Op.MUL, "b", 3)
        b.ret("c")
        f = b.finish()
        copy_propagation(f)
        result, _ = run_function(f, 7)
        assert result == 21


class TestDCE:
    def test_removes_dead_pure_code(self):
        b = FunctionBuilder("f", ("a",))
        b.binop("dead", Op.MUL, "a", 100)
        b.ret("a")
        f = b.finish()
        assert dead_code_elimination(f)
        assert all(i.defs() != ("dead",) for i in _flat_instrs(f))

    def test_keeps_stores_and_calls(self):
        b = FunctionBuilder("f", ("p",))
        b.store("p", 1)
        b.call("ignored", "cos", [1.0])
        b.ret(0)
        f = b.finish()
        dead_code_elimination(f)
        assert len(_flat_instrs(f)) == 3

    def test_removes_transitively_dead_chain(self):
        b = FunctionBuilder("f", ("a",))
        b.binop("x", Op.ADD, "a", 1)
        b.binop("y", Op.ADD, "x", 1)  # y dead => x dead too
        b.ret("a")
        f = b.finish()
        manager = PassManager(passes=(dead_code_elimination,))
        manager.run(f)
        assert len(_flat_instrs(f)) == 1


class TestLocalCSE:
    def test_reuses_repeated_expression(self):
        b = FunctionBuilder("f", ("a", "b"))
        b.binop("x", Op.ADD, "a", "b")
        b.binop("y", Op.ADD, "a", "b")
        b.binop("r", Op.MUL, "x", "y")
        b.ret("r")
        f = b.finish()
        assert local_cse(f)
        moves = [i for i in _flat_instrs(f) if isinstance(i, Move)]
        assert Move("y", Reg("x")) in moves

    def test_commutative_match(self):
        b = FunctionBuilder("f", ("a", "b"))
        b.binop("x", Op.MUL, "a", "b")
        b.binop("y", Op.MUL, "b", "a")
        b.binop("r", Op.ADD, "x", "y")
        b.ret("r")
        f = b.finish()
        assert local_cse(f)

    def test_redefinition_kills_expression(self):
        b = FunctionBuilder("f", ("a", "b"))
        b.binop("x", Op.ADD, "a", "b")
        b.binop("a", Op.ADD, "a", 1)
        b.binop("y", Op.ADD, "a", "b")  # not the same a+b
        b.binop("r", Op.MUL, "x", "y")
        b.ret("r")
        f = b.finish()
        assert not local_cse(f)

    def test_store_kills_loads(self):
        b = FunctionBuilder("f", ("p",))
        b.load("x", "p")
        b.store("p", 0)
        b.load("y", "p")
        b.binop("r", Op.ADD, "x", "y")
        b.ret("r")
        f = b.finish()
        assert not local_cse(f)
        loads = [i for i in _flat_instrs(f) if isinstance(i, Load)]
        assert len(loads) == 2


class TestSimplifyCFG:
    def test_threads_trivial_blocks(self):
        b = FunctionBuilder("f", ())
        b.jump("mid")
        b.label("mid")
        b.jump("end")
        b.label("end")
        b.ret(1)
        f = b.finish()
        assert simplify_cfg(f)
        assert len(f.blocks) == 1

    def test_merges_straightline_pair(self):
        b = FunctionBuilder("f", ("x",))
        b.binop("y", Op.ADD, "x", 1)
        b.jump("next")
        b.label("next")
        b.binop("z", Op.ADD, "y", 1)
        b.ret("z")
        f = b.finish()
        simplify_cfg(f)
        assert len(f.blocks) == 1
        verify_function(f)

    def test_folds_same_target_branch(self):
        b = FunctionBuilder("f", ("c",))
        b.branch("c", "t", "t")
        b.label("t")
        b.ret(0)
        f = b.finish()
        simplify_cfg(f)
        assert not any(isinstance(i, Branch) for i in _flat_instrs(f))

    def test_does_not_break_loop(self):
        f = build_countdown()
        simplify_cfg(f)
        verify_function(f)
        result, _ = run_function(f, 4)
        assert result == 10


class TestPipeline:
    def test_full_pipeline_preserves_loop_semantics(self):
        f = build_countdown()
        optimize_function(f)
        verify_function(f)
        result, _ = run_function(f, 6)
        assert result == 21

    def test_pipeline_reaches_fixpoint_and_shrinks(self):
        b = FunctionBuilder("f", ("n",))
        b.move("a", 2)
        b.move("b", "a")
        b.binop("c", Op.MUL, "b", 3)     # 6
        b.binop("d", Op.ADD, "c", "n")
        b.binop("dead", Op.MUL, "d", "d")
        b.ret("d")
        f = b.finish()
        before = f.instruction_count()
        optimize_function(f)
        assert f.instruction_count() < before
        result, _ = run_function(f, 1)
        assert result == 7

    def test_pass_manager_records_stats(self):
        f = build_countdown()
        manager = PassManager()
        manager.run(f)
        assert isinstance(manager.stats, dict)

    @given(st.integers(min_value=0, max_value=30))
    def test_optimized_countdown_agrees_with_original(self, n):
        original = build_countdown()
        optimized = build_countdown()
        optimize_function(optimized)
        r1, _ = run_function(original, n)
        r2, _ = run_function(optimized, n)
        assert r1 == r2

    def test_optimized_code_is_cheaper(self):
        b = FunctionBuilder("f", ("n",))
        b.move("k", 10)
        b.binop("a", Op.MUL, "k", "k")    # foldable
        b.binop("r", Op.ADD, "a", "n")
        b.ret("r")
        f_slow = b.finish()
        import copy
        f_fast = copy.deepcopy(f_slow)
        optimize_function(f_fast)
        _, slow = run_function(f_slow, 5)
        _, fast = run_function(f_fast, 5)
        assert fast.stats.cycles < slow.stats.cycles
        r1, _ = run_function(f_slow, 5)
        r2, _ = run_function(f_fast, 5)
        assert r1 == r2 == 105
