"""The persistent cross-process artifact store and warm-start snapshots.

The store may only ever make runs *faster*, never different: every test
here pins warm-run statistics and results byte-identical to the cold
run, and every integrity failure (truncation, bit flips, schema drift,
injected faults, races) must resolve to a cold miss — re-generating the
artifact — never to a crash or to executing a stale artifact.
"""

import dataclasses
import os
import pickle
import threading

import pytest

from repro.config import ALL_ON
from repro.evalharness.runner import run_workload
from repro.evalharness.warmstart import run_fingerprints
from repro.runtime import persist
from repro.workloads import WORKLOADS_BY_NAME


@pytest.fixture(autouse=True)
def _isolated_store():
    """No ambient store before, no leaked store after."""
    persist.reset()
    yield
    persist.reset()


def _run_with_store(workload, directory, config=ALL_ON,
                    backend="threaded"):
    persist.reset()
    persist.activate(str(directory))
    try:
        result = run_workload(workload, config, backend=backend)
        stats = persist.active_store().stats()
    finally:
        persist.reset()
    return result, stats


def _records(directory):
    try:
        return sorted(name for name in os.listdir(directory)
                      if name.endswith(".rec"))
    except OSError:
        return []


class TestWarmColdIdentity:
    @pytest.mark.parametrize("name,backend", [
        ("binary", "threaded"),
        ("binary", "pycodegen"),
        ("mipsi", "threaded"),     # exercises continuation replay
    ])
    def test_warm_run_byte_identical(self, tmp_path, name, backend):
        workload = WORKLOADS_BY_NAME[name]
        cold, cold_stats = _run_with_store(workload, tmp_path,
                                           backend=backend)
        warm, warm_stats = _run_with_store(workload, tmp_path,
                                           backend=backend)
        assert run_fingerprints(cold) == run_fingerprints(warm)
        assert warm_stats["replayed_entries"] > 0
        assert warm_stats["stale_drops"] == 0
        if name == "mipsi":
            assert warm_stats["replayed_continuations"] > 0
        # The warm leg generated (essentially) nothing.
        assert sum(warm_stats["work_seconds"].values()) <= \
            sum(cold_stats["work_seconds"].values())

    def test_store_populated_by_cold_run(self, tmp_path):
        workload = WORKLOADS_BY_NAME["binary"]
        _, stats = _run_with_store(workload, tmp_path)
        assert stats["stores"] > 0
        names = _records(tmp_path)
        assert names
        assert all(name.split("-", 1)[0] in persist.KINDS
                   for name in names)


class TestSnapshotRoundTrip:
    def test_snapshot_carries_warm_start(self, tmp_path):
        workload = WORKLOADS_BY_NAME["binary"]
        cold_dir = tmp_path / "cold"
        warm_dir = tmp_path / "warm"
        snap = tmp_path / "store.snap"
        cold, _ = _run_with_store(workload, cold_dir)

        saved = persist.save_snapshot(str(cold_dir), str(snap))
        assert saved.ok and saved.loaded == len(_records(cold_dir))
        loaded = persist.load_snapshot(str(snap), str(warm_dir))
        assert loaded.ok and loaded.loaded == saved.loaded
        assert loaded.skipped == 0
        assert _records(warm_dir) == _records(cold_dir)

        warm, warm_stats = _run_with_store(workload, warm_dir)
        assert run_fingerprints(cold) == run_fingerprints(warm)
        assert warm_stats["replayed_entries"] > 0

    def test_truncated_snapshot_rejected(self, tmp_path):
        workload = WORKLOADS_BY_NAME["binary"]
        cold_dir = tmp_path / "cold"
        warm_dir = tmp_path / "warm"
        snap = tmp_path / "store.snap"
        _run_with_store(workload, cold_dir)
        persist.save_snapshot(str(cold_dir), str(snap))
        raw = snap.read_bytes()
        snap.write_bytes(raw[: len(raw) // 2])

        outcome = persist.load_snapshot(str(snap), str(warm_dir))
        assert not outcome.ok
        assert outcome.error
        assert _records(warm_dir) == []   # nothing half-installed

    def test_flipped_byte_in_snapshot_rejected(self, tmp_path):
        workload = WORKLOADS_BY_NAME["binary"]
        cold_dir = tmp_path / "cold"
        warm_dir = tmp_path / "warm"
        snap = tmp_path / "store.snap"
        _run_with_store(workload, cold_dir)
        persist.save_snapshot(str(cold_dir), str(snap))
        raw = bytearray(snap.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        snap.write_bytes(bytes(raw))

        outcome = persist.load_snapshot(str(snap), str(warm_dir))
        assert not outcome.ok
        assert _records(warm_dir) == []

    def test_missing_snapshot_rejected(self, tmp_path):
        outcome = persist.load_snapshot(str(tmp_path / "absent.snap"),
                                        str(tmp_path / "warm"))
        assert not outcome.ok

    def test_corrupt_record_inside_snapshot_skipped(self, tmp_path):
        """A snapshot whose outer envelope verifies but which carries a
        tampered record installs the good records and skips the bad."""
        workload = WORKLOADS_BY_NAME["binary"]
        cold_dir = tmp_path / "cold"
        warm_dir = tmp_path / "warm"
        snap = tmp_path / "store.snap"
        _run_with_store(workload, cold_dir)
        names = _records(cold_dir)
        victim = cold_dir / names[0]
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))

        saved = persist.save_snapshot(str(cold_dir), str(snap))
        assert saved.ok
        outcome = persist.load_snapshot(str(snap), str(warm_dir))
        assert outcome.ok
        assert outcome.skipped == 1
        assert outcome.loaded == len(names) - 1
        assert names[0] not in _records(warm_dir)


class TestRecordIntegrity:
    def _populate(self, tmp_path):
        workload = WORKLOADS_BY_NAME["binary"]
        cold, _ = _run_with_store(workload, tmp_path)
        return workload, cold

    def test_flipped_byte_is_cold_miss(self, tmp_path):
        workload, cold = self._populate(tmp_path)
        for name in _records(tmp_path):
            victim = tmp_path / name
            raw = bytearray(victim.read_bytes())
            raw[len(raw) // 2] ^= 0xFF
            victim.write_bytes(bytes(raw))

        warm, stats = _run_with_store(workload, tmp_path)
        assert run_fingerprints(cold) == run_fingerprints(warm)
        assert stats["corrupt_dropped"] > 0
        assert stats["replayed_entries"] == 0
        # Dropped records were deleted, then freshly re-stored.
        assert stats["stores"] > 0

    def test_truncated_record_is_cold_miss(self, tmp_path):
        workload, cold = self._populate(tmp_path)
        for name in _records(tmp_path):
            victim = tmp_path / name
            raw = victim.read_bytes()
            victim.write_bytes(raw[: len(raw) // 3])

        warm, stats = _run_with_store(workload, tmp_path)
        assert run_fingerprints(cold) == run_fingerprints(warm)
        assert stats["corrupt_dropped"] > 0
        assert stats["replayed_entries"] == 0

    def test_schema_mismatch_is_cold_miss(self, tmp_path):
        workload, cold = self._populate(tmp_path)
        for name in _records(tmp_path):
            victim = tmp_path / name
            record = pickle.loads(victim.read_bytes())
            record["schema"] = persist.PERSIST_SCHEMA + 999
            victim.write_bytes(pickle.dumps(record))

        warm, stats = _run_with_store(workload, tmp_path)
        assert run_fingerprints(cold) == run_fingerprints(warm)
        assert stats["schema_dropped"] > 0
        assert stats["replayed_entries"] == 0

    def test_empty_record_file_is_cold_miss(self, tmp_path):
        workload, cold = self._populate(tmp_path)
        for name in _records(tmp_path):
            (tmp_path / name).write_bytes(b"")
        warm, stats = _run_with_store(workload, tmp_path)
        assert run_fingerprints(cold) == run_fingerprints(warm)
        assert stats["corrupt_dropped"] > 0

    def test_concurrent_writers_race_safely(self, tmp_path):
        """Many writers racing on the same keys: atomic rename means
        the loser's whole record wins or loses, never interleaves — a
        reader sees either a fully valid record or a miss."""
        store_a = persist.PersistStore(str(tmp_path))
        store_b = persist.PersistStore(str(tmp_path))
        digest = persist.digest("race", 1)
        errors = []

        def writer(store, payload):
            try:
                for _ in range(50):
                    store.put("entry", digest, payload)
            except Exception as exc:   # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(store_a, ["a"] * 64)),
            threading.Thread(target=writer, args=(store_b, ["b"] * 64)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # No temp-file litter, and the surviving record is fully valid.
        assert _records(tmp_path) == [f"entry-{digest}.rec"]
        reader = persist.PersistStore(str(tmp_path))
        value = reader.get("entry", digest)
        assert value in (["a"] * 64, ["b"] * 64)
        assert reader.stats()["corrupt_dropped"] == 0

    def test_leftover_tmp_files_ignored(self, tmp_path):
        workload, cold = self._populate(tmp_path)
        (tmp_path / "garbage.tmp").write_bytes(b"partial write")
        snap = tmp_path / "store.snap"
        saved = persist.save_snapshot(str(tmp_path), str(snap))
        assert saved.ok and saved.loaded == len(_records(tmp_path))
        warm, stats = _run_with_store(workload, tmp_path)
        assert run_fingerprints(cold) == run_fingerprints(warm)
        assert stats["replayed_entries"] > 0


class TestFaultPoints:
    def test_persist_load_fault_drops_to_cold(self, tmp_path):
        workload = WORKLOADS_BY_NAME["binary"]
        cold, _ = _run_with_store(workload, tmp_path)
        config = dataclasses.replace(ALL_ON, faults="persist.load")
        warm, stats = _run_with_store(workload, tmp_path, config=config)
        # Every load is dropped: the run regenerates everything, with
        # statistics still byte-identical to the unfaulted cold run.
        assert run_fingerprints(cold) == run_fingerprints(warm)
        assert stats["replayed_entries"] == 0
        assert stats["corrupt_dropped"] > 0

    def test_persist_store_fault_blocks_writes(self, tmp_path):
        workload = WORKLOADS_BY_NAME["binary"]
        clean, _ = _run_with_store(workload, tmp_path / "clean")
        config = dataclasses.replace(ALL_ON, faults="persist.store")
        faulted, stats = _run_with_store(workload, tmp_path / "faulted",
                                         config=config)
        assert run_fingerprints(clean) == run_fingerprints(faulted)
        assert stats["store_skips"] > 0
        # Run-level artifacts never reached disk.
        assert not any(name.startswith(("entry-", "cont-"))
                       for name in _records(tmp_path / "faulted"))

    def test_non_persist_faults_disable_run_artifacts(self, tmp_path):
        """Armed specializer faults make replay nondeterministic, so the
        run must not bind to the store at all."""
        config = dataclasses.replace(ALL_ON,
                                     faults="specializer.entry:once")
        assert not persist.run_eligible(config)
        assert persist.run_eligible(ALL_ON)
        assert persist.run_eligible(
            dataclasses.replace(ALL_ON, faults="persist.load"))
        assert not persist.run_eligible(
            dataclasses.replace(ALL_ON, check_annotations=True))


class TestStoreApi:
    def test_get_returns_fresh_object_each_call(self, tmp_path):
        store = persist.PersistStore(str(tmp_path))
        digest = persist.digest("fresh", 1)
        store.put("entry", digest, {"mutable": [1, 2]})
        first = store.get("entry", digest)
        first["mutable"].append(3)
        second = store.get("entry", digest)
        assert second == {"mutable": [1, 2]}

    def test_resolve_persist_dir_precedence(self, monkeypatch):
        monkeypatch.delenv(persist.ENV_PERSIST_DIR, raising=False)
        assert persist.resolve_persist_dir("explicit") == "explicit"
        assert persist.resolve_persist_dir() == \
            persist.DEFAULT_PERSIST_DIR
        monkeypatch.setenv(persist.ENV_PERSIST_DIR, "/from/env")
        assert persist.resolve_persist_dir() == "/from/env"
        assert persist.resolve_persist_dir("explicit") == "explicit"

    def test_memo_schema_is_six(self):
        from repro.evalharness.memo import _SCHEMA
        assert _SCHEMA == 6

    def test_memo_key_tracks_resilience_knobs(self, monkeypatch):
        """Schema 6 keys the serve-tier knobs: changing the breaker
        threshold, cooldown, or worker count must change memo keys."""
        from repro.evalharness.memo import memo_key
        from repro.machine.costs import ALPHA_21164
        from repro.runtime.overhead import DEFAULT_OVERHEAD
        from repro.serve import knobs
        workload = WORKLOADS_BY_NAME["binary"]

        def key():
            return memo_key(workload, ALL_ON, ALPHA_21164,
                            DEFAULT_OVERHEAD)

        monkeypatch.delenv(knobs.ENV_BREAKER_THRESHOLD, raising=False)
        monkeypatch.delenv(knobs.ENV_BREAKER_COOLDOWN, raising=False)
        monkeypatch.delenv(knobs.ENV_SERVE_PROCS, raising=False)
        base = key()
        monkeypatch.setenv(knobs.ENV_BREAKER_THRESHOLD, "9")
        assert key() != base
        monkeypatch.delenv(knobs.ENV_BREAKER_THRESHOLD)
        monkeypatch.setenv(knobs.ENV_BREAKER_COOLDOWN, "2.5")
        assert key() != base
        monkeypatch.delenv(knobs.ENV_BREAKER_COOLDOWN)
        monkeypatch.setenv(knobs.ENV_SERVE_PROCS, "7")
        assert key() != base
        monkeypatch.delenv(knobs.ENV_SERVE_PROCS)
        assert key() == base


class TestCrashConsistency:
    """Atomic tmp-file + rename + fsync: kills never tear the store."""

    def _populate(self, tmp_path):
        workload = WORKLOADS_BY_NAME["binary"]
        cold, _ = _run_with_store(workload, tmp_path)
        return workload, cold

    def test_truncated_tmp_files_load_clean(self, tmp_path):
        """An interrupted writer's half-written tmp files are inert:
        a cold open neither executes nor trips over them."""
        workload, cold = self._populate(tmp_path)
        (tmp_path / ".entry-deadbeef.tmp").write_bytes(b"\x80\x04half a")
        (tmp_path / ".cont-cafe.tmp").write_bytes(b"")
        scan = persist.verify_store(str(tmp_path))
        assert scan["corrupt"] == 0
        assert scan["tmp_files"] == 2
        assert scan["ok"] == scan["records"]
        warm, stats = _run_with_store(workload, tmp_path)
        assert run_fingerprints(cold) == run_fingerprints(warm)
        assert stats["corrupt_dropped"] == 0
        assert stats["replayed_entries"] > 0

    def test_partial_rename_to_wrong_digest_is_cold_miss(self, tmp_path):
        """A record surfacing under the wrong final name (the torn tail
        of a botched rename/copy) must read as corrupt, not as the
        artifact its filename claims."""
        workload, cold = self._populate(tmp_path)
        names = _records(tmp_path)
        donor = (tmp_path / names[0]).read_bytes()
        kind = names[0].split("-", 1)[0]
        wrong = tmp_path / f"{kind}-{'0' * 64}.rec"
        wrong.write_bytes(donor)
        store = persist.PersistStore(str(tmp_path))
        assert store.get(kind, "0" * 64) is None
        assert store.stats()["corrupt_dropped"] > 0
        warm, _ = _run_with_store(workload, tmp_path)
        assert run_fingerprints(cold) == run_fingerprints(warm)

    def test_sigkilled_writer_leaves_store_loadable(self, tmp_path):
        """SIGKILL a real writer subprocess mid-store, repeatedly; the
        survivors must verify clean and replay, with zero corrupt
        records ever decoded as valid."""
        import signal
        import subprocess
        import sys
        import time as _time

        script = (
            "import sys\n"
            "from repro.runtime import persist\n"
            "store = persist.PersistStore(sys.argv[1])\n"
            "blob = list(range(50000))\n"
            "i = 0\n"
            "while True:\n"
            "    store.put('entry', persist.digest('kill', i), blob)\n"
            "    i += 1\n"
        )
        src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ, PYTHONPATH=src_dir)
        for round_no in range(3):
            proc = subprocess.Popen([sys.executable, "-c", script,
                                     str(tmp_path)], env=env)
            _time.sleep(0.6 + 0.15 * round_no)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            scan = persist.verify_store(str(tmp_path))
            assert scan["corrupt"] == 0, scan
            assert scan["schema"] == 0, scan
            assert scan["ok"] == scan["records"]
        # Survivors decode to exactly the payload that was written.
        store = persist.PersistStore(str(tmp_path))
        replayed = 0
        for name in _records(tmp_path):
            digest_ = name.split("-", 1)[1].removesuffix(".rec")
            value = store.get("entry", digest_)
            if value is not None:
                assert value == list(range(50000))
                replayed += 1
        assert replayed == store.stats()["hits"]
        assert store.stats()["corrupt_dropped"] == 0

    def test_fsync_fault_aborts_install(self, tmp_path):
        """An injected fsync failure must abort the install entirely:
        no record file appears, and the writer reports a skip."""
        from repro.faults import FaultRegistry
        store = persist.PersistStore(str(tmp_path))
        registry = FaultRegistry.from_spec("persist.fsync")
        digest_ = persist.digest("fsync", 1)
        assert store.put("entry", digest_, ["payload"],
                         faults=registry) is False
        assert store.stats()["store_skips"] > 0
        assert _records(tmp_path) == []
        assert not any(name.endswith(".tmp")
                       for name in os.listdir(tmp_path))
        clean = persist.PersistStore(str(tmp_path))
        assert clean.put("entry", digest_, ["payload"]) is True
        assert _records(tmp_path) == [f"entry-{digest_}.rec"]

    def test_fsync_fault_through_a_run(self, tmp_path):
        """persist.fsync is a registered, run-eligible fault point:
        a faulted run keeps its artifacts out of the store but stays
        byte-identical to a clean run."""
        workload = WORKLOADS_BY_NAME["binary"]
        clean, _ = _run_with_store(workload, tmp_path / "clean")
        config = dataclasses.replace(ALL_ON, faults="persist.fsync")
        assert persist.run_eligible(config)
        faulted, stats = _run_with_store(workload, tmp_path / "faulted",
                                         config=config)
        assert run_fingerprints(clean) == run_fingerprints(faulted)
        assert stats["store_skips"] > 0
        assert not any(name.startswith(("entry-", "cont-"))
                       for name in _records(tmp_path / "faulted"))

    def test_verify_store_flags_corruption(self, tmp_path):
        workload, _ = self._populate(tmp_path)
        names = _records(tmp_path)
        victim = tmp_path / names[0]
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))
        scan = persist.verify_store(str(tmp_path))
        assert scan["corrupt"] == 1
        assert scan["ok"] == len(names) - 1
        assert scan["records"] == len(names)
