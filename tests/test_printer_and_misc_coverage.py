"""Coverage for the printer's runtime instructions, strength helpers,
and assorted small paths."""

from hypothesis import given, strategies as st

from repro.ir import (
    EnterRegion,
    ExitRegion,
    Promote,
    format_instr,
    format_module,
)
from repro.ir.eval import eval_binop
from repro.ir.instructions import Op
from repro.opt.strength import two_term_decomposition


class TestPrinterRuntimeInstrs:
    def test_promote(self):
        text = format_instr(Promote(
            region_id=1, point_id=2, keys=("pc",),
            policy="cache_one_unchecked", emission_id=7,
        ))
        assert "promote" in text and "pc" in text
        assert "cache_one_unchecked" in text

    def test_enter_region(self):
        text = format_instr(EnterRegion(
            region_id=0, keys=("n",), exits=("after", "done"),
        ))
        assert "enter_region 0" in text
        assert "after, done" in text

    def test_exit_region(self):
        assert format_instr(ExitRegion(3)) == "exit_region 3"

    def test_format_module(self):
        from repro.frontend import compile_source
        module = compile_source(
            "func a() { return 1; } func b() { return 2; }"
        )
        text = format_module(module)
        assert "func a():" in text and "func b():" in text


class TestTwoTermDecomposition:
    @given(st.integers(min_value=3, max_value=255))
    def test_decomposition_is_exact(self, value):
        decomposition = two_term_decomposition(value)
        if decomposition is None:
            return
        a, op, b = decomposition
        reconstructed = (1 << a) + (1 << b) if op == "add" \
            else (1 << a) - (1 << b)
        assert reconstructed == value

    def test_known_decompositions(self):
        assert two_term_decomposition(3) is not None    # 2+1
        assert two_term_decomposition(7) is not None    # 8-1
        assert two_term_decomposition(12) is not None   # 8+4
        assert two_term_decomposition(43) is None       # not 2^a±2^b
        assert two_term_decomposition(2) is None        # pure power: n/a
        assert two_term_decomposition(0) is None

    @given(st.integers(min_value=-100, max_value=100),
           st.sampled_from([3, 5, 6, 7, 9, 10, 12, 15, 24, 33, 96]))
    def test_shift_add_equals_multiply(self, x, c):
        a, op, b = two_term_decomposition(c)
        via_shifts = (x << a) + (x << b) if op == "add" \
            else (x << a) - (x << b)
        assert via_shifts == x * c
        assert eval_binop(Op.MUL, x, c) == via_shifts


class TestExecutionStatsSnapshot:
    def test_snapshot_is_independent(self):
        from repro.machine.interp import ExecutionStats
        stats = ExecutionStats()
        stats.cycles = 10.0
        stats.scope_cycles["f"] = 5.0
        snap = stats.snapshot()
        stats.cycles = 99.0
        stats.scope_cycles["f"] = 99.0
        assert snap.cycles == 10.0
        assert snap.scope_cycles["f"] == 5.0


class TestOverheadModel:
    def test_dispatch_cost_policies(self):
        from repro.runtime.overhead import DEFAULT_OVERHEAD as o
        assert o.dispatch_cost("cache_one_unchecked") == 10.0
        assert o.dispatch_cost("cache_indexed") == 14.0
        one = o.dispatch_cost("cache_all", probes=1)
        three = o.dispatch_cost("cache_all", probes=3)
        assert three - one == 2 * o.dispatch_hash_per_probe

    def test_paper_90_cycle_average_is_within_model(self):
        from repro.runtime.overhead import DEFAULT_OVERHEAD as o
        # ~2 probes averages to the paper's ~90 cycles.
        assert o.dispatch_cost("cache_all", probes=2) == 90.0
