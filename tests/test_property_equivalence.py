"""Property-based end-to-end equivalence testing.

The fundamental correctness property of the whole system: for *any*
annotated program, the dynamically compiled version computes exactly
what the statically compiled version computes, under every optimization
configuration.

Hypothesis generates random MiniC programs from a small grammar of
expressions, conditionals, and static-bounded loops over a mix of
annotated-static and dynamic variables, then runs both versions.
"""

from hypothesis import given, settings, strategies as st

from repro.config import ALL_OFF, ALL_ON
from repro.dyc import compile_annotated, compile_static
from repro.frontend import compile_source
from repro.ir import Memory
from repro.machine import Machine

# ----------------------------------------------------------------------
# Random program generation
# ----------------------------------------------------------------------

#: Variables: s1, s2 are annotated static; d1, d2 are dynamic params.
STATIC_VARS = ("s1", "s2")
DYNAMIC_VARS = ("d1", "d2")
ALL_VARS = STATIC_VARS + DYNAMIC_VARS

_atoms = st.sampled_from(
    [str(n) for n in (0, 1, 2, 3, 7)] + list(ALL_VARS)
    + ["arr[(d1) & 7]", "arr[(s1) & 7]",
       "sarr@[(s1) & 7]", "sarr@[(li1) & 7]"]
)

_binops = st.sampled_from(["+", "-", "*"])


@st.composite
def expressions(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(_atoms)
    op = draw(_binops)
    lhs = draw(expressions(depth=depth - 1))
    rhs = draw(expressions(depth=depth - 1))
    return f"({lhs} {op} {rhs})"


@st.composite
def statements(draw, depth=2):
    kind = draw(st.sampled_from(
        ["assign", "assign", "assign", "store", "if", "loop"]
        if depth > 0 else ["assign", "store"]
    ))
    if kind == "assign":
        target = draw(st.sampled_from(ALL_VARS))
        value = draw(expressions())
        return f"{target} = {value};"
    if kind == "store":
        index = draw(expressions(depth=1))
        value = draw(expressions(depth=1))
        return f"arr[({index}) & 7] = {value};"
    if kind == "if":
        cond = draw(expressions(depth=1))
        then_body = draw(statements(depth=depth - 1))
        else_body = draw(statements(depth=depth - 1))
        return (f"if ({cond} > 0) {{ {then_body} }} "
                f"else {{ {else_body} }}")
    # Loop with a static bound: this is what unrolls.  Each nesting
    # depth gets its own index variable so nested loops terminate.
    var = f"li{depth}"
    bound = draw(st.integers(min_value=0, max_value=4))
    body = draw(statements(depth=depth - 1))
    return (f"for ({var} = 0; {var} < {bound}; {var} = {var} + 1) "
            f"{{ {body} }}")


@st.composite
def programs(draw):
    body = " ".join(draw(
        st.lists(statements(), min_size=1, max_size=5)
    ))
    return f"""
    func f(s1, s2, d1, d2, arr, sarr) {{
        make_static(s1, s2, li1, li2, sarr);
        var li1 = 0;
        var li2 = 0;
        {body}
        return s1 + s2 + d1 + d2 + arr[(d2) & 7];
    }}
    """


ARR_INIT = [4, 0, 1, 9, 0, 2, 7, 3]
SARR_INIT = [0, 1, 0, 2, 1, 0, 3, 0]


def _fresh_memory():
    memory = Memory()
    arr = memory.alloc_array(ARR_INIT)
    sarr = memory.alloc_array(SARR_INIT)
    return memory, arr, sarr


def run_both(source: str, args, config):
    module = compile_source(source)
    mem_s, arr_s, sarr_s = _fresh_memory()
    static_machine = Machine(compile_static(module), memory=mem_s,
                             step_limit=500_000)
    expected = static_machine.run("f", *args, arr_s, sarr_s)
    expected_arr = mem_s.read_array(arr_s, 8)

    compiled = compile_annotated(module, config)
    mem_d, arr_d, sarr_d = _fresh_memory()
    machine, _ = compiled.make_machine(memory=mem_d, step_limit=500_000)
    actual = machine.run("f", *args, arr_d, sarr_d)
    assert mem_d.read_array(arr_d, 8) == expected_arr
    # Run again: cached code must stay consistent (stores may have
    # changed arr, so recompute the baseline on the mutated state).
    expected2 = static_machine.run("f", *args, arr_s, sarr_s)
    again = machine.run("f", *args, arr_d, sarr_d)
    assert mem_d.read_array(arr_d, 8) == mem_s.read_array(arr_s, 8)
    return (expected, expected2), (actual, again)


small_ints = st.integers(min_value=-20, max_value=20)


class TestRandomProgramEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(programs(), small_ints, small_ints, small_ints, small_ints)
    def test_all_optimizations(self, source, s1, s2, d1, d2):
        (e1, e2), (a1, a2) = run_both(source, (s1, s2, d1, d2), ALL_ON)
        assert a1 == e1 and a2 == e2

    @settings(max_examples=60, deadline=None)
    @given(programs(), small_ints, small_ints, small_ints, small_ints)
    def test_everything_disabled(self, source, s1, s2, d1, d2):
        (e1, e2), (a1, a2) = run_both(source, (s1, s2, d1, d2), ALL_OFF)
        assert a1 == e1 and a2 == e2

    @settings(max_examples=60, deadline=None)
    @given(
        programs(),
        st.sampled_from([
            "complete_loop_unrolling", "zero_copy_propagation",
            "dead_assignment_elimination", "strength_reduction",
            "internal_promotions", "polyvariant_division",
        ]),
        small_ints, small_ints,
    )
    def test_single_ablations(self, source, ablation, s1, d1):
        (e1, e2), (a1, a2) = run_both(
            source, (s1, 2, d1, 3), ALL_ON.without(ablation)
        )
        assert a1 == e1 and a2 == e2

    @settings(max_examples=40, deadline=None)
    @given(programs(), small_ints, small_ints)
    def test_respecialization_on_new_keys(self, source, s1, d1):
        # Same compiled program, several different static-key values:
        # every version must agree with the static baseline.
        module = compile_source(source)
        mem_s, arr_s, sarr_s = _fresh_memory()
        static_machine = Machine(compile_static(module), memory=mem_s,
                                 step_limit=500_000)
        compiled = compile_annotated(module, ALL_ON)
        mem_d, arr_d, sarr_d = _fresh_memory()
        machine, _ = compiled.make_machine(memory=mem_d,
                                           step_limit=500_000)
        for key in (s1, s1 + 1, s1, 0):
            expected = static_machine.run("f", key, 2, d1, 3,
                                          arr_s, sarr_s)
            assert machine.run("f", key, 2, d1, 3,
                               arr_d, sarr_d) == expected
            assert mem_d.read_array(arr_d, 8) \
                == mem_s.read_array(arr_s, 8)
