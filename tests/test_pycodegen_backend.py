"""The Python-codegen backend must be indistinguishable from the
reference interpreter in counted mode — byte-identical ExecutionStats
and identical results for every workload — and must walk the backend
degradation ladder (pycodegen -> threaded -> reference) on compile
faults without the statistics drifting."""

import dataclasses

import pytest

from repro.config import ALL_OFF, ALL_ON
from repro.errors import TrapError
from repro.evalharness.memo import Memoizer
from repro.evalharness.runner import (
    resolve_backend,
    resolve_codegen_mode,
    run_workload,
)
from repro.ir import BasicBlock, FunctionBuilder, Module, Op
from repro.ir.instructions import Imm, Move, Return
from repro.machine import ALPHA_21164, Machine
from repro.machine.pycodegen import (
    CODEGEN_MODES,
    EAGER_FOOTPRINT,
    CompileFault,
    PyCodegenBackend,
    reset_source_limit_cache,
    resolve_source_limit,
)
from repro.runtime.fallback import BACKEND_LADDER
from repro.workloads import ALL_WORKLOADS, WORKLOADS_BY_NAME

from tests.test_threaded_backend import _run_under, _stats_dict

#: Every workload small enough for the full-corpus identity sweep.
CORPUS = [w.name for w in ALL_WORKLOADS]


@pytest.fixture(autouse=True)
def _fresh_source_limit_cache():
    """The source limit resolves once per process; tests that flip
    ``REPRO_PYCODEGEN_SOURCE_LIMIT`` need the memo dropped around them."""
    reset_source_limit_cache()
    yield
    reset_source_limit_cache()


class TestCountedByteIdentity:
    @pytest.mark.parametrize("name", CORPUS)
    def test_all_workloads_byte_identical(self, name):
        """Acceptance: every workload, both runs, full stats equality."""
        workload = WORKLOADS_BY_NAME[name]
        reference = _run_under(workload, ALL_ON, "reference")
        pycodegen = _run_under(workload, ALL_ON, "pycodegen")
        assert reference == pycodegen

    @pytest.mark.parametrize("name,config", [
        ("dinero", ALL_ON.without("strength_reduction")),
        ("dotproduct", ALL_OFF),
        ("pnmconvol",
         ALL_ON.without("zero_copy_propagation",
                        "dead_assignment_elimination")),
        ("chebyshev", ALL_ON.without("complete_loop_unrolling")),
        ("m88ksim", ALL_ON.without("internal_promotions")),
    ])
    def test_sample_ablations_byte_identical(self, name, config):
        workload = WORKLOADS_BY_NAME[name]
        reference = _run_under(workload, config, "reference")
        pycodegen = _run_under(workload, config, "pycodegen")
        assert reference == pycodegen

    def test_runtime_patch_recompiles_region_code(self):
        """Internal promotions patch emitted code mid-execution; the
        codegen backend must notice the version bump (stale guard) and
        recompile before the next block runs."""
        workload = WORKLOADS_BY_NAME["m88ksim"]
        reference = _run_under(workload, ALL_ON, "reference")
        pycodegen = _run_under(workload, ALL_ON, "pycodegen")
        assert reference == pycodegen
        assert reference["dynamic"]["dispatches"] > 0


class TestFastMode:
    @pytest.mark.parametrize("name", ["dinero", "romberg", "m88ksim"])
    def test_results_match_counted(self, name):
        """Fast mode drops accounting, never semantics: the verified
        static/dynamic results must equal the counted run's."""
        workload = WORKLOADS_BY_NAME[name]
        counted = run_workload(workload, backend="pycodegen",
                               codegen_mode="counted")
        fast = run_workload(workload, backend="pycodegen",
                            codegen_mode="fast")
        assert fast.outputs_match
        assert fast.return_values == counted.return_values

    def test_fast_mode_bypasses_memo(self, tmp_path):
        """Fast-mode stats must never be served from (or stored to) the
        shared content-hash cache the counted backends key."""
        memo = Memoizer(str(tmp_path))
        workload = WORKLOADS_BY_NAME["dotproduct"]
        run_workload(workload, backend="pycodegen", codegen_mode="fast",
                     memo=memo)
        assert list(tmp_path.iterdir()) == []
        counted = run_workload(workload, backend="pycodegen", memo=memo)
        assert list(tmp_path.iterdir()) != []
        assert counted.dynamic_total_cycles > 0


class TestResolution:
    def test_backends_accepted(self):
        for backend in ("reference", "threaded", "pycodegen"):
            assert resolve_backend(backend) == backend
        with pytest.raises(ValueError):
            resolve_backend("jit")

    def test_codegen_mode_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODEGEN_MODE", raising=False)
        assert resolve_codegen_mode(None) == "counted"
        monkeypatch.setenv("REPRO_CODEGEN_MODE", "fast")
        assert resolve_codegen_mode(None) == "fast"
        assert resolve_codegen_mode("counted") == "counted"
        with pytest.raises(ValueError):
            resolve_codegen_mode("warp")
        assert CODEGEN_MODES == ("counted", "fast")

    def test_machine_rejects_unknown_mode(self):
        b = FunctionBuilder("f", ())
        b.ret(0)
        mod = Module()
        mod.add_function(b.finish())
        with pytest.raises(Exception):
            Machine(mod, backend="pycodegen", codegen_mode="warp")


class TestTranslationCache:
    def _constant_module(self, value):
        b = FunctionBuilder("f", ())
        b.move("x", value)
        b.ret("x")
        mod = Module()
        mod.add_function(b.finish())
        return mod

    def test_translations_are_cached(self):
        mod = self._constant_module(1)
        machine = Machine(mod, backend="pycodegen")
        assert machine.run("f") == 1
        fn = mod.functions["f"]
        backend = machine._backend
        scale = ALPHA_21164.static_schedule_factor
        first = backend.translation(fn, 0.0, scale, region=False)
        assert machine.run("f") == 1
        again = backend.translation(fn, 0.0, scale, region=False)
        assert again is first
        assert backend.compiled_functions >= 1

    def test_version_bump_invalidates_translation(self):
        mod = self._constant_module(1)
        machine = Machine(mod, backend="pycodegen")
        assert machine.run("f") == 1
        fn = mod.functions["f"]
        label = fn.entry
        fn.blocks[label] = BasicBlock(
            label, [Move("x", Imm(2)), Return(Imm(2))]
        )
        fn.bump_version()
        assert machine.run("f") == 2

    def test_stats_identical_after_patch(self):
        results = {}
        for backend in ("reference", "pycodegen"):
            mod = self._constant_module(1)
            machine = Machine(mod, backend=backend)
            machine.run("f")
            fn = mod.functions["f"]
            fn.blocks[fn.entry] = BasicBlock(
                fn.entry, [Move("x", Imm(2)), Move("y", Imm(3)),
                           Return(Imm(5))]
            )
            fn.bump_version()
            value = machine.run("f")
            results[backend] = (value, _stats_dict(machine.stats))
        assert results["reference"] == results["pycodegen"]


class TestDegradationLadder:
    def test_ladder_order(self):
        assert BACKEND_LADDER == ("pycodegen", "threaded", "reference")

    def test_compile_fault_degrades_to_threaded(self):
        """pycodegen.compile armed alone: every compile attempt falls to
        the threaded rung, which translates fine — so compilations
        degrade, translations do not, and the stats stay identical."""
        config = dataclasses.replace(ALL_ON,
                                     faults="pycodegen.compile")
        workload = WORKLOADS_BY_NAME["dinero"]
        result = run_workload(workload, config=config,
                              backend="pycodegen")
        assert result.degraded_compilations > 0
        assert result.degraded_translations == 0
        assert result.degraded
        clean = run_workload(workload, backend="reference")
        assert result.dynamic_total_cycles == clean.dynamic_total_cycles
        assert result.static_total_cycles == clean.static_total_cycles

    def test_both_faults_degrade_to_reference(self):
        """Both rungs armed: pycodegen -> threaded -> reference, with
        both counters advancing and the stats still byte-identical."""
        config = dataclasses.replace(
            ALL_ON, faults="pycodegen.compile;threaded.translate"
        )
        workload = WORKLOADS_BY_NAME["dinero"]
        result = run_workload(workload, config=config,
                              backend="pycodegen")
        assert result.degraded_compilations > 0
        assert result.degraded_translations > 0
        assert result.degraded
        clean = run_workload(workload, backend="reference")
        assert result.dynamic_total_cycles == clean.dynamic_total_cycles

    def test_oversize_source_refused(self, monkeypatch):
        """A source limit below any emitted function forces the ladder:
        the backend refuses every compile (counting the refusals) and
        the run completes on the lower rungs, stats unchanged."""
        monkeypatch.setenv("REPRO_PYCODEGEN_SOURCE_LIMIT", "10")
        workload = WORKLOADS_BY_NAME["dotproduct"]
        result = run_workload(workload, backend="pycodegen")
        monkeypatch.delenv("REPRO_PYCODEGEN_SOURCE_LIMIT")
        clean = run_workload(workload, backend="reference")
        assert result.degraded_compilations > 0
        assert result.dynamic_total_cycles == clean.dynamic_total_cycles

    def test_oversize_refusal_counter(self, monkeypatch):
        monkeypatch.setenv("REPRO_PYCODEGEN_SOURCE_LIMIT", "10")
        b = FunctionBuilder("f", ())
        b.move("x", 7)
        b.ret("x")
        mod = Module()
        mod.add_function(b.finish())
        machine = Machine(mod, backend="pycodegen")
        assert machine.run("f") == 7
        backend = machine._backend
        assert isinstance(backend, PyCodegenBackend)
        assert backend.oversize_refusals >= 1
        with pytest.raises(CompileFault):
            backend._compile(mod.functions["f"], 0.0, 1.0, False)


class TestSourceLimitResolution:
    def test_resolves_once_per_process(self, monkeypatch):
        """The env knob is read exactly once; later changes are invisible
        until the test hook drops the memo."""
        monkeypatch.delenv("REPRO_PYCODEGEN_SOURCE_LIMIT",
                           raising=False)
        reset_source_limit_cache()
        from repro.machine.pycodegen import DEFAULT_SOURCE_LIMIT
        assert resolve_source_limit() == DEFAULT_SOURCE_LIMIT
        monkeypatch.setenv("REPRO_PYCODEGEN_SOURCE_LIMIT", "123")
        assert resolve_source_limit() == DEFAULT_SOURCE_LIMIT
        reset_source_limit_cache()
        assert resolve_source_limit() == 123

    def test_caller_default_bypasses_memo(self, monkeypatch):
        """A non-default fallback must not read from — or poison — the
        process-wide memo."""
        monkeypatch.delenv("REPRO_PYCODEGEN_SOURCE_LIMIT",
                           raising=False)
        reset_source_limit_cache()
        assert resolve_source_limit(500) == 500
        monkeypatch.setenv("REPRO_PYCODEGEN_SOURCE_LIMIT", "77")
        assert resolve_source_limit(500) == 77
        monkeypatch.delenv("REPRO_PYCODEGEN_SOURCE_LIMIT")
        from repro.machine.pycodegen import DEFAULT_SOURCE_LIMIT
        assert resolve_source_limit() == DEFAULT_SOURCE_LIMIT


class TestTieredCompilation:
    def test_large_regions_start_on_threaded_tier(self, monkeypatch):
        """A region bigger than EAGER_FOOTPRINT must not pay compile()
        until it proves hot; the cold entries run on the threaded tier
        with identical stats (the corpus identity tests above cover the
        numbers — here we check the policy knob actually gates)."""
        monkeypatch.setenv("REPRO_PYCODEGEN_THRESHOLD", "0")
        workload = WORKLOADS_BY_NAME["romberg"]
        eager = _run_under(workload, ALL_ON, "pycodegen")
        monkeypatch.delenv("REPRO_PYCODEGEN_THRESHOLD")
        tiered = _run_under(workload, ALL_ON, "pycodegen")
        assert eager == tiered
        assert EAGER_FOOTPRINT > 0


class TestTraps:
    def test_undefined_variable_trap_matches_reference(self):
        messages = {}
        for backend in ("reference", "pycodegen"):
            b = FunctionBuilder("f", ())
            b.binop("x", Op.ADD, "missing", 1)
            b.ret("x")
            mod = Module()
            mod.add_function(b.finish())
            machine = Machine(mod, backend=backend)
            with pytest.raises(TrapError) as caught:
                machine.run("f")
            messages[backend] = str(caught.value)
        assert messages["reference"] == messages["pycodegen"]
