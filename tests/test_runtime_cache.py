"""Tests for the code caches: double hashing and the unchecked slot."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CacheError
from repro.faults import FaultRegistry
from repro.runtime.cache import (
    CodeCache,
    LookupResult,
    UncheckedCache,
    entry_checksum,
)

keys = st.tuples(st.integers(min_value=-10**6, max_value=10**6),
                 st.integers(min_value=0, max_value=255))


class TestCodeCache:
    def test_miss_then_hit(self):
        cache = CodeCache()
        assert not cache.lookup((1, 2)).hit
        cache.insert((1, 2), "code")
        result = cache.lookup((1, 2))
        assert result.hit and result.value == "code"

    def test_distinct_keys_independent(self):
        cache = CodeCache()
        cache.insert((1,), "a")
        cache.insert((2,), "b")
        assert cache.lookup((1,)).value == "a"
        assert cache.lookup((2,)).value == "b"
        assert not cache.lookup((3,)).hit

    def test_overwrite_same_key(self):
        cache = CodeCache()
        cache.insert((5,), "old")
        cache.insert((5,), "new")
        assert cache.lookup((5,)).value == "new"
        assert len(cache) == 1

    def test_growth_preserves_entries(self):
        cache = CodeCache(initial_size=4)
        for k in range(50):
            cache.insert((k,), k * 10)
        for k in range(50):
            result = cache.lookup((k,))
            assert result.hit and result.value == k * 10
        assert len(cache) == 50

    def test_grow_rehashes_collision_clusters(self):
        # Load a small table past any comfortable density, then grow:
        # every entry — including the colliding ones — must rehash to a
        # retrievable slot under the doubled size.
        cache = CodeCache(initial_size=8, max_load_factor=0.95)
        keys = [(k * 7919, 3) for k in range(7)]
        for i, key in enumerate(keys):
            cache.insert(key, i)
        before = dict(cache.items())
        cache._grow()
        assert cache._size == 16
        assert dict(cache.items()) == before
        for i, key in enumerate(keys):
            result = cache.lookup(key)
            assert result.hit and result.value == i

    def test_average_probes_after_growth(self):
        cache = CodeCache(initial_size=4)
        for k in range(100):
            cache.insert((k,), k)
        assert cache._size > 4  # grew several times on the way
        for k in range(100):
            assert cache.lookup((k,)).hit
        assert cache.average_probes == pytest.approx(
            cache.total_probes / cache.total_lookups
        )
        # Post-growth load factor is at most max_load, so the probe
        # average stays near 1 instead of degrading with the insert count.
        assert 1.0 <= cache.average_probes < 3.0

    def test_growth_does_not_pollute_probe_stats(self):
        # _grow re-inserts internally; dispatch statistics must only
        # reflect real lookups, or measured dispatch costs would drift.
        cache = CodeCache(initial_size=4)
        for k in range(50):
            cache.insert((k,), k)
        assert cache.total_lookups == 0
        assert cache.total_probes == 0
        assert cache.average_probes == 0.0

    def test_probe_counting(self):
        cache = CodeCache()
        result = cache.lookup((9,))
        assert result.probes >= 1
        assert cache.total_lookups == 1
        assert cache.total_probes >= 1

    def test_collisions_increase_probes(self):
        # Load a small table heavily: average probes must exceed 1.
        cache = CodeCache(initial_size=16, max_load_factor=0.95)
        for k in range(13):
            cache.insert((k * 7919,), k)
        for k in range(13):
            assert cache.lookup((k * 7919,)).hit
        assert cache.average_probes > 1.0

    def test_float_keys(self):
        cache = CodeCache()
        cache.insert((1.5, 2.5), "fp")
        assert cache.lookup((1.5, 2.5)).hit
        assert not cache.lookup((1.5, 2.0)).hit

    def test_minimum_size_enforced(self):
        with pytest.raises(CacheError):
            CodeCache(initial_size=2)

    def test_items_iteration(self):
        cache = CodeCache()
        data = {(k,): k * 2 for k in range(10)}
        for key, value in data.items():
            cache.insert(key, value)
        assert dict(cache.items()) == data

    def test_deterministic_hash(self):
        # The FNV fold must be PYTHONHASHSEED-independent for numbers.
        from repro.runtime.cache import _hash_key
        assert _hash_key((42, 7)) == _hash_key((42, 7))
        assert _hash_key((42,)) != _hash_key((43,))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(keys, st.integers()), max_size=60))
    def test_model_based_against_dict(self, operations):
        cache = CodeCache(initial_size=8)
        model: dict = {}
        for key, value in operations:
            cache.insert(key, value)
            model[key] = value
        for key, value in model.items():
            result = cache.lookup(key)
            assert result.hit and result.value == value
        assert len(cache) == len(model)


class TestTombstoneCompaction:
    def test_churn_triggers_compaction(self):
        """Sustained delete/reinsert churn must rehash in place once
        tombstones dominate, instead of growing the table forever."""
        cache = CodeCache()
        for round_number in range(40):
            keys = [(round_number, i) for i in range(160)]
            for key in keys:
                cache.insert(key, key)
            for key in keys:
                assert cache.delete(key)
        assert cache.compactions > 0
        assert len(cache) == 0
        # The table stayed usable and bounded by the live set, not by
        # the total insert history.
        cache.insert((999,), "live")
        assert cache.lookup((999,)).hit
        assert cache._size < 4096

    def test_compaction_preserves_live_entries(self):
        cache = CodeCache()
        live = {(i,): f"v{i}" for i in range(16)}
        for key, value in live.items():
            cache.insert(key, value)
        churn = [("churn", i) for i in range(300)]
        for key in churn:
            cache.insert(key, "churn")
        for key in churn:
            assert cache.delete(key)
        assert cache.compactions > 0
        for key, value in live.items():
            result = cache.lookup(key)
            assert result.hit and result.value == value

    def test_delete_unknown_key_is_false(self):
        cache = CodeCache()
        cache.insert((1,), "a")
        assert not cache.delete((2,))
        assert cache.delete((1,))
        assert not cache.delete((1,))
        assert not cache.lookup((1,)).hit

    def test_clean_cache_never_compacts(self):
        """A cache that never deletes must keep its exact pre-change
        probe accounting: no tombstones, no compaction."""
        cache = CodeCache()
        for i in range(512):
            cache.insert((i,), i)
        for i in range(512):
            assert cache.lookup((i,)).hit
        assert cache.compactions == 0
        assert cache._fill == cache._count


class TestBoundedCache:
    def test_capacity_bounds_live_entries(self):
        cache = CodeCache(capacity=4)
        for k in range(10):
            cache.insert((k,), k)
        assert len(cache) == 4
        assert cache.evictions == 6
        assert cache.lookup((9,)).hit  # the newest insert survives

    def test_reinsert_same_key_does_not_evict(self):
        cache = CodeCache(capacity=2)
        cache.insert((1,), "a")
        cache.insert((2,), "b")
        cache.insert((1,), "a2")  # overwrite, not a new entry
        assert cache.evictions == 0
        assert cache.lookup((1,)).value == "a2"
        assert cache.lookup((2,)).value == "b"

    def test_second_chance_spares_referenced_entry(self):
        cache = CodeCache(capacity=2)
        cache.insert((1,), "a")
        cache.insert((2,), "b")
        # Mark (1,) recently-used and (2,) cold; the clock must give
        # (1,) its second chance and evict (2,).
        cache._ref = [key == (1,) for key in cache._keys]
        cache.insert((3,), "c")
        assert cache.lookup((1,)).hit
        assert not cache.lookup((2,)).hit
        assert cache.lookup((3,)).hit

    def test_tombstones_recycled_not_grown(self):
        # Sustained insert/evict churn must not balloon the table:
        # rehashes drop tombstones and the size stays at its floor.
        cache = CodeCache(initial_size=16, capacity=2)
        for k in range(200):
            cache.insert((k,), k)
        assert len(cache) == 2
        assert cache._size == 16
        assert cache.evictions == 198

    def test_eviction_then_miss_then_reinsert(self):
        cache = CodeCache(capacity=1)
        cache.insert((1,), "a")
        cache.insert((2,), "b")
        assert not cache.lookup((1,)).hit  # evicted
        cache.insert((1,), "a")           # caller re-specialized
        assert cache.lookup((1,)).value == "a"

    def test_on_evict_callback(self):
        calls = []
        cache = CodeCache(capacity=1, on_evict=lambda: calls.append(1))
        cache.insert((1,), "a")
        cache.insert((2,), "b")
        assert calls == [1]


class TestChecksummedCache:
    def test_clean_entries_verify(self):
        cache = CodeCache(checksum=entry_checksum)
        cache.insert((1,), "payload")
        assert cache.lookup((1,)).value == "payload"
        assert cache.corrupt_hits == 0

    def test_injected_corruption_detected_and_recovered(self):
        faults = FaultRegistry.from_spec("cache.corrupt:once")
        calls = []
        cache = CodeCache(checksum=entry_checksum, faults=faults,
                          on_corrupt=lambda: calls.append(1))
        cache.insert((1,), "payload")   # stamp is written corrupted
        result = cache.lookup((1,))
        assert not result.hit
        assert cache.corrupt_hits == 1
        assert calls == [1]
        assert len(cache) == 0          # the bad entry was deleted
        cache.insert((1,), "payload")   # re-specialize: fault was once
        assert cache.lookup((1,)).value == "payload"

    def test_manual_stamp_flip_detected(self):
        cache = CodeCache(checksum=entry_checksum)
        cache.insert((7,), "v")
        index = next(i for i, key in enumerate(cache._keys)
                     if key == (7,))
        cache._stamps[index] ^= 1
        assert not cache.lookup((7,)).hit
        assert cache.corrupt_hits == 1

    def test_corruption_survives_rehash(self):
        # _grow carries stamps verbatim, so a corrupt entry must still
        # be caught after the table rebuilds.
        faults = FaultRegistry.from_spec("cache.corrupt:once")
        cache = CodeCache(initial_size=4, checksum=entry_checksum,
                          faults=faults)
        cache.insert((0,), "bad")       # corrupted stamp
        for k in range(1, 20):
            cache.insert((k,), k)       # forces several rehashes
        assert not cache.lookup((0,)).hit
        assert cache.corrupt_hits == 1
        for k in range(1, 20):
            assert cache.lookup((k,)).hit

    def test_evict_fault_forces_eviction(self):
        faults = FaultRegistry.from_spec("cache.evict:at=2")
        cache = CodeCache(faults=faults)
        cache.insert((1,), "a")
        cache.insert((2,), "b")   # 2nd insert fires: evicts a victim
        assert len(cache) == 1
        assert cache.evictions == 1


class TestUncheckedCache:
    def test_first_lookup_misses(self):
        cache = UncheckedCache()
        assert not cache.lookup((1,)).hit

    def test_returns_slot_without_key_check(self):
        # The documented hazard: any key hits once the slot is filled.
        cache = UncheckedCache()
        cache.insert((1,), "for-1")
        assert cache.lookup((1,)).value == "for-1"
        assert cache.lookup((999,)).value == "for-1"  # stale, no check

    def test_strict_mode_raises_on_key_change(self):
        cache = UncheckedCache(strict=True)
        cache.insert((1,), "v")
        assert cache.lookup((1,)).hit
        with pytest.raises(CacheError, match="unsafe"):
            cache.lookup((2,))

    def test_strict_mode_accepts_same_key(self):
        cache = UncheckedCache(strict=True)
        cache.insert((7, 8), "v")
        for _ in range(3):
            assert cache.lookup((7, 8)).value == "v"

    def test_strict_mode_allows_explicit_refill(self):
        # Only *lookups* with a changed key are the hazard; an explicit
        # insert legitimately repoints the slot.
        cache = UncheckedCache(strict=True)
        cache.insert((1,), "a")
        cache.insert((2,), "b")
        assert cache.lookup((2,)).value == "b"

    def test_single_probe(self):
        cache = UncheckedCache()
        cache.insert((1,), "v")
        assert cache.lookup((1,)).probes == 1

    def test_strict_semantics_unchanged_with_faults_armed(self,
                                                          monkeypatch):
        # The unchecked slot has no checksum/eviction machinery, so
        # armed cache faults must not alter its documented behavior:
        # stale wrong-key hits without strict, a raise with it.
        monkeypatch.setenv("REPRO_FAULTS",
                           "cache.corrupt:always;cache.evict:always")
        loose = UncheckedCache()
        loose.insert((1,), "for-1")
        assert loose.lookup((999,)).value == "for-1"
        strict = UncheckedCache(strict=True)
        strict.insert((1,), "v")
        with pytest.raises(CacheError, match="unsafe"):
            strict.lookup((2,))
