"""Tests for the code caches: double hashing and the unchecked slot."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CacheError
from repro.runtime.cache import CodeCache, LookupResult, UncheckedCache

keys = st.tuples(st.integers(min_value=-10**6, max_value=10**6),
                 st.integers(min_value=0, max_value=255))


class TestCodeCache:
    def test_miss_then_hit(self):
        cache = CodeCache()
        assert not cache.lookup((1, 2)).hit
        cache.insert((1, 2), "code")
        result = cache.lookup((1, 2))
        assert result.hit and result.value == "code"

    def test_distinct_keys_independent(self):
        cache = CodeCache()
        cache.insert((1,), "a")
        cache.insert((2,), "b")
        assert cache.lookup((1,)).value == "a"
        assert cache.lookup((2,)).value == "b"
        assert not cache.lookup((3,)).hit

    def test_overwrite_same_key(self):
        cache = CodeCache()
        cache.insert((5,), "old")
        cache.insert((5,), "new")
        assert cache.lookup((5,)).value == "new"
        assert len(cache) == 1

    def test_growth_preserves_entries(self):
        cache = CodeCache(initial_size=4)
        for k in range(50):
            cache.insert((k,), k * 10)
        for k in range(50):
            result = cache.lookup((k,))
            assert result.hit and result.value == k * 10
        assert len(cache) == 50

    def test_grow_rehashes_collision_clusters(self):
        # Load a small table past any comfortable density, then grow:
        # every entry — including the colliding ones — must rehash to a
        # retrievable slot under the doubled size.
        cache = CodeCache(initial_size=8, max_load_factor=0.95)
        keys = [(k * 7919, 3) for k in range(7)]
        for i, key in enumerate(keys):
            cache.insert(key, i)
        before = dict(cache.items())
        cache._grow()
        assert cache._size == 16
        assert dict(cache.items()) == before
        for i, key in enumerate(keys):
            result = cache.lookup(key)
            assert result.hit and result.value == i

    def test_average_probes_after_growth(self):
        cache = CodeCache(initial_size=4)
        for k in range(100):
            cache.insert((k,), k)
        assert cache._size > 4  # grew several times on the way
        for k in range(100):
            assert cache.lookup((k,)).hit
        assert cache.average_probes == pytest.approx(
            cache.total_probes / cache.total_lookups
        )
        # Post-growth load factor is at most max_load, so the probe
        # average stays near 1 instead of degrading with the insert count.
        assert 1.0 <= cache.average_probes < 3.0

    def test_growth_does_not_pollute_probe_stats(self):
        # _grow re-inserts internally; dispatch statistics must only
        # reflect real lookups, or measured dispatch costs would drift.
        cache = CodeCache(initial_size=4)
        for k in range(50):
            cache.insert((k,), k)
        assert cache.total_lookups == 0
        assert cache.total_probes == 0
        assert cache.average_probes == 0.0

    def test_probe_counting(self):
        cache = CodeCache()
        result = cache.lookup((9,))
        assert result.probes >= 1
        assert cache.total_lookups == 1
        assert cache.total_probes >= 1

    def test_collisions_increase_probes(self):
        # Load a small table heavily: average probes must exceed 1.
        cache = CodeCache(initial_size=16, max_load_factor=0.95)
        for k in range(13):
            cache.insert((k * 7919,), k)
        for k in range(13):
            assert cache.lookup((k * 7919,)).hit
        assert cache.average_probes > 1.0

    def test_float_keys(self):
        cache = CodeCache()
        cache.insert((1.5, 2.5), "fp")
        assert cache.lookup((1.5, 2.5)).hit
        assert not cache.lookup((1.5, 2.0)).hit

    def test_minimum_size_enforced(self):
        with pytest.raises(CacheError):
            CodeCache(initial_size=2)

    def test_items_iteration(self):
        cache = CodeCache()
        data = {(k,): k * 2 for k in range(10)}
        for key, value in data.items():
            cache.insert(key, value)
        assert dict(cache.items()) == data

    def test_deterministic_hash(self):
        # The FNV fold must be PYTHONHASHSEED-independent for numbers.
        from repro.runtime.cache import _hash_key
        assert _hash_key((42, 7)) == _hash_key((42, 7))
        assert _hash_key((42,)) != _hash_key((43,))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(keys, st.integers()), max_size=60))
    def test_model_based_against_dict(self, operations):
        cache = CodeCache(initial_size=8)
        model: dict = {}
        for key, value in operations:
            cache.insert(key, value)
            model[key] = value
        for key, value in model.items():
            result = cache.lookup(key)
            assert result.hit and result.value == value
        assert len(cache) == len(model)


class TestUncheckedCache:
    def test_first_lookup_misses(self):
        cache = UncheckedCache()
        assert not cache.lookup((1,)).hit

    def test_returns_slot_without_key_check(self):
        # The documented hazard: any key hits once the slot is filled.
        cache = UncheckedCache()
        cache.insert((1,), "for-1")
        assert cache.lookup((1,)).value == "for-1"
        assert cache.lookup((999,)).value == "for-1"  # stale, no check

    def test_strict_mode_raises_on_key_change(self):
        cache = UncheckedCache(strict=True)
        cache.insert((1,), "v")
        assert cache.lookup((1,)).hit
        with pytest.raises(CacheError, match="unsafe"):
            cache.lookup((2,))

    def test_strict_mode_accepts_same_key(self):
        cache = UncheckedCache(strict=True)
        cache.insert((7, 8), "v")
        for _ in range(3):
            assert cache.lookup((7, 8)).value == "v"

    def test_strict_mode_allows_explicit_refill(self):
        # Only *lookups* with a changed key are the hazard; an explicit
        # insert legitimately repoints the slot.
        cache = UncheckedCache(strict=True)
        cache.insert((1,), "a")
        cache.insert((2,), "b")
        assert cache.lookup((2,)).value == "b"

    def test_single_probe(self):
        cache = UncheckedCache()
        cache.insert((1,), "v")
        assert cache.lookup((1,)).probes == 1
