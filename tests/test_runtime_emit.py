"""Unit tests for the emission/completion stage (ZCP, DAE, SR,
immediate fitting) in isolation from the specializer."""

import pytest

from repro.config import ALL_ON, OptConfig
from repro.dyc.plans import InstrPlan
from repro.ir import BinOp, Imm, Jump, Load, Move, Op, Reg, Store
from repro.runtime.emit import BlockEmitter
from repro.runtime.overhead import DEFAULT_OVERHEAD
from repro.runtime.stats import RegionStats


def make_emitter(config: OptConfig = ALL_ON):
    stats = RegionStats(region_id=0, function_name="t")
    charges = []
    emitter = BlockEmitter(config, DEFAULT_OVERHEAD, stats,
                           charges.append)
    return emitter, stats, charges


def plan(zcp=True, sr=True, uses=1, remote=False, removable=True):
    return InstrPlan(zcp_candidate=zcp, sr_candidate=sr,
                     local_uses=uses, remote=remote, removable=removable)


def emitted(emitter):
    return emitter.flush(Jump("next"))[:-1]


class TestHoleFilling:
    def test_hole_becomes_immediate(self):
        emitter, _, _ = make_emitter()
        instr = BinOp("d", Op.ADD, Reg("x"), Reg("k"))
        emitter.emit_template(instr, {"k": 7}, plan())
        [out] = emitted(emitter)
        assert out == BinOp("d", Op.ADD, Reg("x"), Imm(7))

    def test_large_int_materialized(self):
        emitter, _, _ = make_emitter()
        instr = BinOp("d", Op.ADD, Reg("x"), Reg("k"))
        emitter.emit_template(instr, {"k": 100_000}, plan())
        instrs = emitted(emitter)
        assert len(instrs) == 2
        assert instrs[0] == Move(instrs[0].dest, Imm(100_000))
        assert instrs[1].rhs == Reg(instrs[0].dest)

    def test_float_materialized(self):
        emitter, _, _ = make_emitter()
        instr = BinOp("d", Op.ADD, Reg("x"), Reg("k"))
        emitter.emit_template(instr, {"k": 2.5}, plan())
        instrs = emitted(emitter)
        assert len(instrs) == 2

    def test_small_int_fits_inline(self):
        emitter, _, _ = make_emitter()
        emitter.emit_template(
            Store(Reg("p"), Reg("k")), {"k": 200}, None
        )
        [out] = emitted(emitter)
        assert out == Store(Reg("p"), Imm(200))


class TestZeroCopyPropagation:
    def test_mul_by_one_is_copy(self):
        emitter, stats, _ = make_emitter()
        emitter.emit_template(
            BinOp("w", Op.MUL, Reg("x"), Reg("k")), {"k": 1.0}, plan()
        )
        # Eliminated entirely; downstream use of w resolves to x.
        emitter.emit_template(
            BinOp("s", Op.ADD, Reg("s0"), Reg("w")), {}, plan()
        )
        instrs = emitted(emitter)
        assert instrs == [BinOp("s", Op.ADD, Reg("s0"), Reg("x"))]
        assert stats.zcp_copy_hits == 1

    def test_mul_by_zero_cascades_to_dae(self):
        emitter, stats, _ = make_emitter()
        emitter.emit_template(
            Load("x", Reg("p")), {}, plan(uses=1)
        )
        emitter.emit_template(
            BinOp("w", Op.MUL, Reg("x"), Reg("k")), {"k": 0.0}, plan()
        )
        # The multiply disappears AND the now-dead load cascades away.
        assert emitted(emitter) == []
        assert stats.zcp_zero_hits == 1
        assert stats.dae_removed == 1

    def test_add_zero_copy(self):
        emitter, stats, _ = make_emitter()
        emitter.emit_template(
            BinOp("d", Op.ADD, Reg("k"), Reg("x")), {"k": 0}, plan()
        )
        emitter.emit_template(
            Store(Reg("p"), Reg("d")), {}, None
        )
        assert emitted(emitter) == [Store(Reg("p"), Reg("x"))]

    def test_sub_zero_rhs_only(self):
        emitter, _, _ = make_emitter()
        # 0 - x is NOT x; must be emitted.
        emitter.emit_template(
            BinOp("d", Op.SUB, Reg("k"), Reg("x")), {"k": 0}, plan()
        )
        assert len(emitted(emitter)) == 1

    def test_or_zero_copy(self):
        emitter, _, _ = make_emitter()
        emitter.emit_template(
            BinOp("d", Op.OR, Reg("k"), Reg("x")), {"k": 0}, plan()
        )
        emitter.emit_template(Store(Reg("p"), Reg("d")), {}, None)
        assert emitted(emitter) == [Store(Reg("p"), Reg("x"))]

    def test_and_zero_is_const_zero(self):
        emitter, _, _ = make_emitter()
        emitter.emit_template(
            BinOp("d", Op.AND, Reg("x"), Reg("k")), {"k": 0}, plan()
        )
        emitter.emit_template(Store(Reg("p"), Reg("d")), {}, None)
        assert emitted(emitter) == [Store(Reg("p"), Imm(0))]

    def test_remote_result_still_materialized(self):
        emitter, _, _ = make_emitter()
        emitter.emit_template(
            BinOp("w", Op.MUL, Reg("x"), Reg("k")), {"k": 1.0},
            plan(remote=True),
        )
        # w is live beyond the block: the copy must be emitted.
        assert emitted(emitter) == [Move("w", Reg("x"))]

    def test_both_constant_folds(self):
        emitter, _, _ = make_emitter()
        emitter.emit_template(
            BinOp("d", Op.MUL, Reg("a"), Reg("b")), {"a": 6, "b": 7},
            plan(),
        )
        emitter.emit_template(Store(Reg("p"), Reg("d")), {}, None)
        assert emitted(emitter) == [Store(Reg("p"), Imm(42))]

    def test_note_killed_by_redefinition(self):
        emitter, _, _ = make_emitter()
        emitter.emit_template(
            BinOp("d", Op.MUL, Reg("x"), Reg("k")), {"k": 1.0}, plan()
        )
        # d redefined dynamically: the copy note must not survive.
        emitter.emit_template(Load("d", Reg("p")), {}, plan())
        emitter.emit_template(Store(Reg("q"), Reg("d")), {}, None)
        instrs = emitted(emitter)
        assert instrs[-1] == Store(Reg("q"), Reg("d"))

    def test_zcp_disabled_emits_everything(self):
        emitter, stats, _ = make_emitter(
            ALL_ON.without("zero_copy_propagation",
                           "strength_reduction")
        )
        emitter.emit_template(
            BinOp("w", Op.MUL, Reg("x"), Reg("k")), {"k": 1.0}, plan()
        )
        assert len(emitted(emitter)) == 2  # materialize + mul
        assert stats.zcp_copy_hits == 0

    def test_dae_disabled_keeps_move(self):
        emitter, stats, _ = make_emitter(
            ALL_ON.without("dead_assignment_elimination")
        )
        emitter.emit_template(
            BinOp("w", Op.MUL, Reg("x"), Reg("k")), {"k": 1.0}, plan()
        )
        # ZCP still substitutes downstream, but the move is emitted.
        instrs = emitted(emitter)
        assert Move("w", Reg("x")) in instrs
        assert stats.dae_removed == 0

    def test_self_copy_removed_with_dae(self):
        emitter, stats, _ = make_emitter()
        # s = s + 0.0 becomes a self-move: removable even though remote.
        emitter.emit_template(
            BinOp("s", Op.ADD, Reg("s"), Reg("k")), {"k": 0.0},
            plan(remote=True),
        )
        assert emitted(emitter) == []
        assert stats.dae_removed == 1


class TestStrengthReduction:
    def test_mul_power_of_two(self):
        emitter, stats, _ = make_emitter(
            ALL_ON.without("zero_copy_propagation")
        )
        emitter.emit_template(
            BinOp("d", Op.MUL, Reg("x"), Reg("k")), {"k": 8}, plan()
        )
        assert emitted(emitter) == [BinOp("d", Op.SHL, Reg("x"), Imm(3))]
        assert stats.sr_applied == 1

    def test_div_power_of_two(self):
        emitter, _, _ = make_emitter()
        emitter.emit_template(
            BinOp("d", Op.DIV, Reg("x"), Reg("k")), {"k": 16}, plan()
        )
        assert emitted(emitter) == [BinOp("d", Op.SHR, Reg("x"), Imm(4))]

    def test_mod_power_of_two(self):
        emitter, _, _ = make_emitter()
        emitter.emit_template(
            BinOp("d", Op.MOD, Reg("x"), Reg("k")), {"k": 32},
            InstrPlan(False, True, 1, False, True),
        )
        assert emitted(emitter) == [BinOp("d", Op.AND, Reg("x"), Imm(31))]

    def test_two_term_decomposition(self):
        emitter, stats, _ = make_emitter(
            ALL_ON.without("zero_copy_propagation")
        )
        emitter.emit_template(
            BinOp("d", Op.MUL, Reg("x"), Reg("k")), {"k": 12}, plan()
        )
        instrs = emitted(emitter)
        # 12 = 8 + 4: two shifts and an add.
        assert len(instrs) == 3
        assert {i.op for i in instrs} == {Op.SHL, Op.ADD}
        assert stats.sr_applied == 1

    def test_float_reciprocal(self):
        emitter, stats, _ = make_emitter()
        emitter.emit_template(
            BinOp("d", Op.DIV, Reg("x"), Reg("k")), {"k": 4.0}, plan()
        )
        instrs = emitted(emitter)
        # Mul by 0.25: exact reciprocal, materialized.
        assert instrs[-1].op is Op.MUL
        assert stats.sr_applied == 1

    def test_sr_disabled(self):
        emitter, stats, _ = make_emitter(
            ALL_ON.without("strength_reduction",
                           "zero_copy_propagation")
        )
        emitter.emit_template(
            BinOp("d", Op.MUL, Reg("x"), Reg("k")), {"k": 8}, plan()
        )
        [out] = emitted(emitter)
        assert out.op is Op.MUL
        assert stats.sr_applied == 0

    def test_int_mul_by_zero_without_zcp_clears(self):
        emitter, stats, _ = make_emitter(
            ALL_ON.without("zero_copy_propagation")
        )
        emitter.emit_template(
            BinOp("d", Op.MUL, Reg("x"), Reg("k")), {"k": 0}, plan()
        )
        assert emitted(emitter) == [Move("d", Imm(0))]
        assert stats.sr_applied == 1


class TestResiduals:
    def test_residual_emitted_once(self):
        emitter, _, _ = make_emitter()
        emitter.emit_residual("t", 5)
        emitter.emit_residual("t", 5)
        assert emitted(emitter) == [Move("t", Imm(5))]

    def test_residual_value_types(self):
        emitter, _, _ = make_emitter()
        emitter.emit_residual("a", 3)
        emitter.emit_residual("b", 2.5)
        instrs = emitted(emitter)
        assert instrs == [Move("a", Imm(3)), Move("b", Imm(2.5))]
