"""Tests for the serve daemon: protocol, admission, cache, routing."""

import asyncio
import json

import pytest

from repro.config import ALL_ON
from repro.errors import (
    HarnessError,
    SpecializationBudgetError,
    SpecializationError,
    WorkerFault,
)
from repro.evalharness.runner import run_workload
from repro.serve.admission import (
    AdmissionQueue,
    Backpressure,
    QuotaExceeded,
)
from repro.serve.app import ServeApp
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard
from repro.serve.cache import ShardedResultCache
from repro.serve.http import render_response, retry_after_hint
from repro.serve.protocol import (
    BadRequest,
    build_config,
    classify_error,
    parse_run_request,
    result_payload,
    run_fingerprint,
)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------

class TestProtocol:
    def test_parse_minimal_request(self):
        req = parse_run_request({"workload": "binary"})
        assert req.tenant == "anon"
        assert req.workload == "binary"
        assert req.config == ALL_ON
        assert req.verify and not req.no_cache

    def test_unknown_workload_rejected(self):
        with pytest.raises(BadRequest, match="unknown workload"):
            parse_run_request({"workload": "nope"})

    def test_non_object_body_rejected(self):
        with pytest.raises(BadRequest):
            parse_run_request([1, 2, 3])

    def test_bad_tenant_rejected(self):
        with pytest.raises(BadRequest, match="tenant"):
            parse_run_request({"workload": "binary", "tenant": ""})
        with pytest.raises(BadRequest, match="tenant"):
            parse_run_request({"workload": "binary", "tenant": "x" * 65})

    def test_unknown_config_field_rejected(self):
        with pytest.raises(BadRequest, match="unknown config field"):
            build_config({"turbo": True})

    def test_config_type_checking(self):
        with pytest.raises(BadRequest, match="boolean"):
            build_config({"static_loads": 1})
        with pytest.raises(BadRequest, match="integer"):
            build_config({"quarantine_after": True})

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(BadRequest, match="unknown fault point"):
            build_config({"faults": "not.a.point"})

    def test_config_overrides_applied(self):
        config = build_config({"static_loads": False,
                               "quarantine_after": 7})
        assert not config.static_loads
        assert config.quarantine_after == 7

    def test_classify_specialization_errors(self):
        status, body = classify_error(
            SpecializationError("boom", region_id=2, attempt=1))
        assert status == 422
        assert body["error"]["code"] == "specialization_error"
        assert body["error"]["region_id"] == 2
        status, body = classify_error(SpecializationBudgetError("over"))
        assert status == 422
        assert body["error"]["code"] == "specialization_budget"

    def test_classify_other_errors(self):
        assert classify_error(WorkerFault("x"))[0] == 500
        assert classify_error(HarnessError([]))[0] == 502
        assert classify_error(BadRequest("x"))[0] == 400
        assert classify_error(RuntimeError("x"))[0] == 500

    def test_fingerprint_matches_offline_run(self):
        a = run_workload(_workload("binary"), backend="reference")
        b = run_workload(_workload("binary"), backend="threaded")
        assert run_fingerprint(a) == run_fingerprint(b)

    def test_result_payload_is_json_safe(self):
        result = run_workload(_workload("binary"))
        payload = result_payload(result, "threaded")
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["workload"] == "binary"
        assert round_tripped["fingerprint"] == run_fingerprint(result)
        assert "quarantined_contexts" in round_tripped["degradation"]


def _workload(name):
    from repro.workloads import WORKLOADS_BY_NAME
    return WORKLOADS_BY_NAME[name]


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------

def _run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_quota_rejects_hot_tenant_only(self):
        async def go():
            queue = AdmissionQueue(max_concurrency=1, max_queue=10,
                                   tenant_quota=1)
            release = asyncio.Event()

            async def hold(tenant):
                async with queue.slot(tenant):
                    await release.wait()

            task = asyncio.create_task(hold("a"))
            await asyncio.sleep(0)
            with pytest.raises(QuotaExceeded):
                async with queue.slot("a"):
                    pass
            # Another tenant may still wait for the semaphore.
            other = asyncio.create_task(hold("b"))
            await asyncio.sleep(0)
            assert queue.waiting == 1
            release.set()
            await asyncio.gather(task, other)
            assert queue.rejected_quota == 1
            assert queue.stats()["tenants_in_flight"] == {}

        _run(go())

    def test_backpressure_on_full_queue(self):
        async def go():
            queue = AdmissionQueue(max_concurrency=1, max_queue=1,
                                   tenant_quota=100)
            release = asyncio.Event()

            async def hold(tenant):
                async with queue.slot(tenant):
                    await release.wait()

            running = asyncio.create_task(hold("a"))
            await asyncio.sleep(0)
            waiting = asyncio.create_task(hold("b"))
            await asyncio.sleep(0)
            with pytest.raises(Backpressure):
                async with queue.slot("c"):
                    pass
            release.set()
            await asyncio.gather(running, waiting)
            assert queue.rejected_backpressure == 1
            assert queue.peak_waiting == 1

        _run(go())


# ----------------------------------------------------------------------
# Sharded cache
# ----------------------------------------------------------------------

class TestShardedCache:
    def test_miss_then_hit_and_tenant_isolation(self):
        cache = ShardedResultCache(shards=4, capacity_per_shard=8)
        assert cache.get("a", "key") is None
        cache.put("a", "key", {"v": 1})
        assert cache.get("a", "key") == {"v": 1}
        assert cache.get("b", "key") is None   # other tenant: miss

    def test_heat_survives_eviction_and_drives_tiers(self):
        cache = ShardedResultCache(shards=1, capacity_per_shard=4)
        assert cache.backend_for("t", "k") == "reference"
        for _ in range(cache.tier_threaded):
            cache.get("t", "k")
        assert cache.backend_for("t", "k") == "threaded"
        for _ in range(cache.tier_pycodegen):
            cache.get("t", "k")
        assert cache.backend_for("t", "k") == "pycodegen"
        # Fill the single shard far past capacity; "k" may be evicted
        # but its heat (tracked beside the shards) must persist.
        for i in range(16):
            cache.put("t", f"other-{i}", {"i": i})
        assert cache.backend_for("t", "k") == "pycodegen"
        stats = cache.stats()
        assert stats["evictions"] > 0
        assert stats["entries"] <= 4

    def test_stats_shape(self):
        cache = ShardedResultCache(shards=3, capacity_per_shard=8)
        cache.put("t", "a", {})
        cache.get("t", "a")
        cache.get("t", "b")
        stats = cache.stats()
        assert len(stats["shards"]) == 3
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert 0.0 <= stats["shard_balance"] <= 1.0


# ----------------------------------------------------------------------
# App routing and request orchestration
# ----------------------------------------------------------------------

def _app(**kwargs) -> ServeApp:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("cache_capacity", 16)
    return ServeApp(**kwargs)


def _post_run(app, body: dict):
    return app.handle("POST", "/run",
                      json.dumps(body).encode("utf-8"))


class TestServeApp:
    def test_unknown_path_and_method(self):
        async def go():
            app = _app()
            try:
                assert (await app.handle("GET", "/nope", b""))[0] == 404
                assert (await app.handle("POST", "/stats", b""))[0] == 405
                assert (await app.handle("GET", "/run", b""))[0] == 405
            finally:
                app.close()

        _run(go())

    def test_bad_json_is_400(self):
        async def go():
            app = _app()
            try:
                status, body = await app.handle("POST", "/run", b"{nope")
                assert status == 400
                assert body["error"]["code"] == "bad_request"
            finally:
                app.close()

        _run(go())

    def test_run_then_cache_hit(self):
        async def go():
            app = _app()
            try:
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "t1"})
                assert status == 200
                assert body["backend"] == "reference"  # cold key
                assert "cached" not in body
                status, again = await _post_run(
                    app, {"workload": "binary", "tenant": "t1"})
                assert status == 200
                assert again["cached"] is True
                assert again["fingerprint"] == body["fingerprint"]
                offline = run_workload(_workload("binary"))
                assert body["fingerprint"] == run_fingerprint(offline)
                assert app.cache_served == 1 and app.executions == 1
            finally:
                app.close()

        _run(go())

    def test_single_flight_coalesces_storm(self):
        async def go():
            app = _app()
            try:
                request = {"workload": "dotproduct", "tenant": "storm"}
                results = await asyncio.gather(
                    *(_post_run(app, request) for _ in range(8)))
                assert all(status == 200 for status, _ in results)
                fingerprints = {body["fingerprint"]
                                for _, body in results}
                assert len(fingerprints) == 1
                # One leader executed; everyone else coalesced or was
                # served from cache.
                assert app.executions == 1
                assert app.coalesced + app.cache_served == 7
            finally:
                app.close()

        _run(go())

    def test_serve_admit_fault_is_structured_500(self):
        async def go():
            app = _app(fault_spec="serve.admit:once")
            try:
                status, body = await _post_run(
                    app, {"workload": "binary"})
                assert status == 500
                assert body["error"]["code"] == "injected_fault"
                # The daemon survives: the next request succeeds.
                status, _ = await _post_run(app, {"workload": "binary"})
                assert status == 200
                assert app.faults.summary()["serve.admit"] == (2, 1)
            finally:
                app.close()

        _run(go())

    def test_deterministic_422_is_cached(self, monkeypatch):
        calls = []

        def boom(*args, **kwargs):
            calls.append(1)
            raise SpecializationBudgetError("over budget", region_id=0)

        async def go():
            app = _app()
            try:
                monkeypatch.setattr("repro.serve.app.run_workload", boom)
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "e"})
                assert status == 422
                assert body["error"]["code"] == "specialization_budget"
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "e"})
                assert status == 422
                assert body["cached"] is True
                assert len(calls) == 1
            finally:
                app.close()

        _run(go())

    def test_degraded_run_counts_surface(self):
        async def go():
            app = _app()
            try:
                status, body = await _post_run(app, {
                    "workload": "binary",
                    "tenant": "f",
                    "config": {"faults": "specializer.entry:once"},
                })
                assert status == 200
                assert body["degradation"]["respecializations"] > 0
                health = app._healthz()
                assert health["degraded_runs"] == 1
                stats = app._stats()
                assert stats["degradation"]["respecializations"] > 0
                assert stats["tenants"]["f"]["degraded_runs"] == 1
            finally:
                app.close()

        _run(go())

    def test_quota_429(self):
        async def go():
            app = _app(workers=1, tenant_quota=1)
            try:
                slow = _post_run(app, {"workload": "chebyshev",
                                       "tenant": "q"})
                fast = _post_run(app, {"workload": "binary",
                                       "tenant": "q"})
                (s1, _), (s2, b2) = await asyncio.gather(slow, fast)
                statuses = sorted((s1, s2))
                assert statuses == [200, 429] or statuses == [200, 200]
                if 429 in (s1, s2):
                    assert app.admission.rejected_quota == 1
            finally:
                app.close()

        _run(go())

    def test_healthz_and_stats_endpoints(self):
        async def go():
            app = _app()
            try:
                status, health = await app.handle("GET", "/healthz", b"")
                assert status == 200 and health["status"] == "ok"
                assert health["draining"] is False
                assert health["worker"] is None
                status, stats = await app.handle("GET", "/stats", b"")
                assert status == 200
                assert "cache" in stats and "admission" in stats
                assert stats["breakers"]["enabled"] is True
                assert stats["server"]["respond_drops"] == 0
                assert stats["server"]["draining"] is False
                # No supervisor state file exported in-process.
                assert stats["supervisor"] is None
                status, listing = await app.handle(
                    "GET", "/workloads", b"")
                assert status == 200
                assert "binary" in listing["workloads"]
            finally:
                app.close()

        _run(go())


# ----------------------------------------------------------------------
# Circuit breakers
# ----------------------------------------------------------------------

def _board(threshold=3, cooldown=10.0):
    """A BreakerBoard on a hand-cranked clock."""
    clock = {"now": 0.0}
    board = BreakerBoard(threshold=threshold, cooldown=cooldown,
                         clock=lambda: clock["now"])
    return board, clock


class TestCircuitBreakerUnit:
    def test_trips_after_consecutive_failures(self):
        board, _ = _board(threshold=3)
        for _ in range(3):
            assert board.acquire("t", "w") is None
            board.settle("t", "w", 500)
        wait = board.acquire("t", "w")
        assert wait is not None and wait > 0
        assert board.state_of("t", "w") == OPEN
        assert board.rejected == 1

    def test_success_resets_the_streak(self):
        board, _ = _board(threshold=2)
        board.acquire("t", "w")
        board.settle("t", "w", 500)
        board.acquire("t", "w")
        board.settle("t", "w", 200)          # streak broken
        board.acquire("t", "w")
        board.settle("t", "w", 500)
        assert board.acquire("t", "w") is None
        assert board.state_of("t", "w") == CLOSED

    def test_deterministic_422_counts_as_success(self):
        board, _ = _board(threshold=1)
        board.acquire("t", "w")
        board.settle("t", "w", 422)
        assert board.state_of("t", "w") == CLOSED

    def test_shed_statuses_are_neutral(self):
        board, _ = _board(threshold=1)
        for status in (429, 503):
            board.acquire("t", "w")
            board.settle("t", "w", status)
        assert board.state_of("t", "w") == CLOSED

    def test_none_status_is_a_failure(self):
        board, _ = _board(threshold=1)
        board.acquire("t", "w")
        board.settle("t", "w", None)
        assert board.state_of("t", "w") == OPEN

    def test_half_open_probe_closes_on_success(self):
        board, clock = _board(threshold=1, cooldown=5.0)
        board.acquire("t", "w")
        board.settle("t", "w", 500)
        assert board.acquire("t", "w") is not None   # still cooling
        clock["now"] = 5.1
        assert board.acquire("t", "w") is None       # the probe
        assert board.state_of("t", "w") == HALF_OPEN
        # Only one probe slot: a second caller is rejected.
        assert board.acquire("t", "w") is not None
        board.settle("t", "w", 200)
        assert board.state_of("t", "w") == CLOSED
        assert board.acquire("t", "w") is None

    def test_half_open_probe_reopens_on_failure(self):
        board, clock = _board(threshold=1, cooldown=5.0)
        board.acquire("t", "w")
        board.settle("t", "w", 500)
        clock["now"] = 5.1
        assert board.acquire("t", "w") is None
        board.settle("t", "w", 502)
        assert board.state_of("t", "w") == OPEN
        # Fresh cooldown from the failed probe.
        wait = board.acquire("t", "w")
        assert wait is not None and wait > 4.0

    def test_keys_are_independent(self):
        board, _ = _board(threshold=1)
        board.acquire("a", "binary")
        board.settle("a", "binary", 500)
        assert board.acquire("a", "binary") is not None
        assert board.acquire("a", "dotproduct") is None
        assert board.acquire("b", "binary") is None

    def test_threshold_zero_disables_the_board(self):
        board, _ = _board(threshold=0)
        assert not board.enabled
        for _ in range(10):
            assert board.acquire("t", "w") is None
            board.settle("t", "w", 500)
        assert board.acquire("t", "w") is None
        assert board.stats()["tracked"] == 0

    def test_stats_shape(self):
        board, _ = _board(threshold=1)
        board.acquire("t", "w")
        board.settle("t", "w", 500)
        board.acquire("t", "w")
        stats = board.stats()
        assert stats["trips"] == 1 and stats["rejected"] == 1
        assert stats["states"][OPEN] == 1
        assert stats["open_now"] == ["t/w"]


class TestBreakerInApp:
    def test_trips_to_circuit_open_503(self):
        async def go():
            app = _app(fault_spec="serve.admit",
                       breaker_threshold=2, breaker_cooldown=60.0)
            try:
                for _ in range(2):
                    status, body = await _post_run(
                        app, {"workload": "binary", "tenant": "t"})
                    assert status == 500
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "t"})
                assert status == 503
                assert body["error"]["code"] == "circuit_open"
                assert body["error"]["retry_after"] > 0
                # Only the admitted requests hit the fault point.
                assert app.faults.summary()["serve.admit"] == (2, 2)
                stats = app._stats()
                assert stats["breakers"]["trips"] == 1
                assert stats["breakers"]["open_now"] == ["t/binary"]
                assert stats["tenants"]["t"]["rejected"] == 1
            finally:
                app.close()

        _run(go())

    def test_breaker_keys_tenant_and_workload(self):
        async def go():
            app = _app(fault_spec="serve.admit",
                       breaker_threshold=1, breaker_cooldown=60.0)
            try:
                status, _ = await _post_run(
                    app, {"workload": "binary", "tenant": "t1"})
                assert status == 500
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "t1"})
                assert body["error"]["code"] == "circuit_open"
                # Other tenants and workloads still reach the executor
                # (and take the injected 500, not a breaker 503).
                status, _ = await _post_run(
                    app, {"workload": "binary", "tenant": "t2"})
                assert status == 500
                status, _ = await _post_run(
                    app, {"workload": "dotproduct", "tenant": "t1"})
                assert status == 500
            finally:
                app.close()

        _run(go())

    def test_cache_hits_bypass_open_breaker(self, monkeypatch):
        async def go():
            app = _app(breaker_threshold=1, breaker_cooldown=60.0)
            try:
                status, warm = await _post_run(
                    app, {"workload": "binary", "tenant": "t"})
                assert status == 200
                monkeypatch.setattr("repro.serve.app.run_workload",
                                    _boom)
                # no_cache forces a miss → executes → 500 → trips.
                status, _ = await _post_run(
                    app, {"workload": "binary", "tenant": "t",
                          "no_cache": True})
                assert status == 500
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "t",
                          "no_cache": True})
                assert body["error"]["code"] == "circuit_open"
                # The cached result is still served while open.
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "t"})
                assert status == 200 and body["cached"] is True
                assert body["fingerprint"] == warm["fingerprint"]
            finally:
                app.close()

        _run(go())

    def test_half_open_probe_recovers(self, monkeypatch):
        fail = {"left": 2}

        def flaky(*args, **kwargs):
            if fail["left"] > 0:
                fail["left"] -= 1
                raise RuntimeError("transient backend failure")
            return run_workload(*args, **kwargs)

        async def go():
            app = _app(breaker_threshold=2, breaker_cooldown=0.05)
            try:
                monkeypatch.setattr("repro.serve.app.run_workload",
                                    flaky)
                for _ in range(2):
                    status, _ = await _post_run(
                        app, {"workload": "binary", "tenant": "t"})
                    assert status == 500
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "t"})
                assert body["error"]["code"] == "circuit_open"
                await asyncio.sleep(0.06)
                # Cooldown elapsed: the probe runs and heals the pair.
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "t"})
                assert status == 200
                assert app.breakers.state_of("t", "binary") == "closed"
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "t"})
                assert status == 200 and body["cached"] is True
            finally:
                app.close()

        _run(go())

    def test_threshold_zero_disables_in_app(self):
        async def go():
            app = _app(fault_spec="serve.admit", breaker_threshold=0)
            try:
                for _ in range(4):
                    status, body = await _post_run(
                        app, {"workload": "binary", "tenant": "t"})
                    assert status == 500
                    assert body["error"]["code"] == "injected_fault"
                assert app._stats()["breakers"]["enabled"] is False
            finally:
                app.close()

        _run(go())


def _boom(*args, **kwargs):
    raise RuntimeError("backend down")


# ----------------------------------------------------------------------
# Echo passthrough and respond-fault behavior
# ----------------------------------------------------------------------

class TestEchoAndRespondFault:
    def test_echo_round_trips_on_every_outcome(self, monkeypatch):
        async def go():
            app = _app(breaker_threshold=1, breaker_cooldown=60.0)
            try:
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "t",
                          "echo": "req-000"})
                assert status == 200 and body["echo"] == "req-000"
                # Cached response echoes the *new* request's token.
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "t",
                          "echo": "req-001"})
                assert body["cached"] is True
                assert body["echo"] == "req-001"
                monkeypatch.setattr("repro.serve.app.run_workload",
                                    _boom)
                status, body = await _post_run(
                    app, {"workload": "dotproduct", "tenant": "t",
                          "echo": "req-002", "no_cache": True})
                assert status == 500 and body["echo"] == "req-002"
                status, body = await _post_run(
                    app, {"workload": "dotproduct", "tenant": "t",
                          "echo": "req-003", "no_cache": True})
                assert body["error"]["code"] == "circuit_open"
                assert body["echo"] == "req-003"
            finally:
                app.close()

        _run(go())

    def test_echo_never_reaches_the_cache_key(self):
        async def go():
            app = _app()
            try:
                status, a = await _post_run(
                    app, {"workload": "binary", "echo": "x"})
                status, b = await _post_run(
                    app, {"workload": "binary", "echo": "y"})
                assert b["cached"] is True
                assert a["fingerprint"] == b["fingerprint"]
                assert app.executions == 1
            finally:
                app.close()

        _run(go())

    def test_oversize_or_non_string_echo_rejected(self):
        async def go():
            app = _app()
            try:
                status, body = await _post_run(
                    app, {"workload": "binary", "echo": "e" * 129})
                assert status == 400
                status, body = await _post_run(
                    app, {"workload": "binary", "echo": 7})
                assert status == 400
            finally:
                app.close()

        _run(go())

    def test_drop_response_cuts_connection_unsupervised(self):
        async def go():
            # Unsupervised (no REPRO_SERVE_WORKER): the hook reports
            # True (http layer cuts the connection) instead of exiting.
            app = _app(fault_spec="serve.respond:once")
            try:
                assert app.drop_response() is True
                assert app.respond_drops == 1
                assert app.drop_response() is False   # once = spent
            finally:
                app.close()

        _run(go())

    def test_drop_response_suppressed_while_draining(self):
        async def go():
            app = _app(fault_spec="serve.respond")
            try:
                app.draining = True
                assert app.drop_response() is False
                assert app.respond_drops == 0
            finally:
                app.close()

        _run(go())


# ----------------------------------------------------------------------
# Retry-After surfacing
# ----------------------------------------------------------------------

class TestRetryAfter:
    def test_hint_only_for_shed_statuses(self):
        body = {"error": {"retry_after": 0.4}}
        assert retry_after_hint(429, body) == 1
        assert retry_after_hint(503, body) == 1
        assert retry_after_hint(500, body) is None
        assert retry_after_hint(200, body) is None

    def test_hint_rounds_up_whole_seconds(self):
        assert retry_after_hint(
            429, {"error": {"retry_after": 2.1}}) == 3
        assert retry_after_hint(
            503, {"error": {"retry_after": 5}}) == 5

    def test_hint_ignores_malformed_bodies(self):
        assert retry_after_hint(429, {}) is None
        assert retry_after_hint(429, {"error": {}}) is None
        assert retry_after_hint(
            429, {"error": {"retry_after": "soon"}}) is None
        assert retry_after_hint(
            429, {"error": {"retry_after": -1}}) is None

    def test_header_emitted_in_rendered_response(self):
        raw = render_response(503, {"error": {"retry_after": 0.25}})
        head = raw.split(b"\r\n\r\n", 1)[0]
        assert b"Retry-After: 1" in head
        raw = render_response(200, {"ok": True})
        assert b"Retry-After" not in raw

    def test_admission_rejections_carry_retry_after(self):
        status, body = ServeApp._classify_admission(
            QuotaExceeded("t", in_flight=3, quota=3))
        assert status == 429 and body["error"]["retry_after"] == 1
        status, body = ServeApp._classify_admission(
            Backpressure(queued=9, limit=9))
        assert status == 503 and body["error"]["retry_after"] == 1
