"""Tests for the serve daemon: protocol, admission, cache, routing."""

import asyncio
import json

import pytest

from repro.config import ALL_ON
from repro.errors import (
    HarnessError,
    SpecializationBudgetError,
    SpecializationError,
    WorkerFault,
)
from repro.evalharness.runner import run_workload
from repro.serve.admission import (
    AdmissionQueue,
    Backpressure,
    QuotaExceeded,
)
from repro.serve.app import ServeApp
from repro.serve.cache import ShardedResultCache
from repro.serve.protocol import (
    BadRequest,
    build_config,
    classify_error,
    parse_run_request,
    result_payload,
    run_fingerprint,
)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------

class TestProtocol:
    def test_parse_minimal_request(self):
        req = parse_run_request({"workload": "binary"})
        assert req.tenant == "anon"
        assert req.workload == "binary"
        assert req.config == ALL_ON
        assert req.verify and not req.no_cache

    def test_unknown_workload_rejected(self):
        with pytest.raises(BadRequest, match="unknown workload"):
            parse_run_request({"workload": "nope"})

    def test_non_object_body_rejected(self):
        with pytest.raises(BadRequest):
            parse_run_request([1, 2, 3])

    def test_bad_tenant_rejected(self):
        with pytest.raises(BadRequest, match="tenant"):
            parse_run_request({"workload": "binary", "tenant": ""})
        with pytest.raises(BadRequest, match="tenant"):
            parse_run_request({"workload": "binary", "tenant": "x" * 65})

    def test_unknown_config_field_rejected(self):
        with pytest.raises(BadRequest, match="unknown config field"):
            build_config({"turbo": True})

    def test_config_type_checking(self):
        with pytest.raises(BadRequest, match="boolean"):
            build_config({"static_loads": 1})
        with pytest.raises(BadRequest, match="integer"):
            build_config({"quarantine_after": True})

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(BadRequest, match="unknown fault point"):
            build_config({"faults": "not.a.point"})

    def test_config_overrides_applied(self):
        config = build_config({"static_loads": False,
                               "quarantine_after": 7})
        assert not config.static_loads
        assert config.quarantine_after == 7

    def test_classify_specialization_errors(self):
        status, body = classify_error(
            SpecializationError("boom", region_id=2, attempt=1))
        assert status == 422
        assert body["error"]["code"] == "specialization_error"
        assert body["error"]["region_id"] == 2
        status, body = classify_error(SpecializationBudgetError("over"))
        assert status == 422
        assert body["error"]["code"] == "specialization_budget"

    def test_classify_other_errors(self):
        assert classify_error(WorkerFault("x"))[0] == 500
        assert classify_error(HarnessError([]))[0] == 502
        assert classify_error(BadRequest("x"))[0] == 400
        assert classify_error(RuntimeError("x"))[0] == 500

    def test_fingerprint_matches_offline_run(self):
        a = run_workload(_workload("binary"), backend="reference")
        b = run_workload(_workload("binary"), backend="threaded")
        assert run_fingerprint(a) == run_fingerprint(b)

    def test_result_payload_is_json_safe(self):
        result = run_workload(_workload("binary"))
        payload = result_payload(result, "threaded")
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["workload"] == "binary"
        assert round_tripped["fingerprint"] == run_fingerprint(result)
        assert "quarantined_contexts" in round_tripped["degradation"]


def _workload(name):
    from repro.workloads import WORKLOADS_BY_NAME
    return WORKLOADS_BY_NAME[name]


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------

def _run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_quota_rejects_hot_tenant_only(self):
        async def go():
            queue = AdmissionQueue(max_concurrency=1, max_queue=10,
                                   tenant_quota=1)
            release = asyncio.Event()

            async def hold(tenant):
                async with queue.slot(tenant):
                    await release.wait()

            task = asyncio.create_task(hold("a"))
            await asyncio.sleep(0)
            with pytest.raises(QuotaExceeded):
                async with queue.slot("a"):
                    pass
            # Another tenant may still wait for the semaphore.
            other = asyncio.create_task(hold("b"))
            await asyncio.sleep(0)
            assert queue.waiting == 1
            release.set()
            await asyncio.gather(task, other)
            assert queue.rejected_quota == 1
            assert queue.stats()["tenants_in_flight"] == {}

        _run(go())

    def test_backpressure_on_full_queue(self):
        async def go():
            queue = AdmissionQueue(max_concurrency=1, max_queue=1,
                                   tenant_quota=100)
            release = asyncio.Event()

            async def hold(tenant):
                async with queue.slot(tenant):
                    await release.wait()

            running = asyncio.create_task(hold("a"))
            await asyncio.sleep(0)
            waiting = asyncio.create_task(hold("b"))
            await asyncio.sleep(0)
            with pytest.raises(Backpressure):
                async with queue.slot("c"):
                    pass
            release.set()
            await asyncio.gather(running, waiting)
            assert queue.rejected_backpressure == 1
            assert queue.peak_waiting == 1

        _run(go())


# ----------------------------------------------------------------------
# Sharded cache
# ----------------------------------------------------------------------

class TestShardedCache:
    def test_miss_then_hit_and_tenant_isolation(self):
        cache = ShardedResultCache(shards=4, capacity_per_shard=8)
        assert cache.get("a", "key") is None
        cache.put("a", "key", {"v": 1})
        assert cache.get("a", "key") == {"v": 1}
        assert cache.get("b", "key") is None   # other tenant: miss

    def test_heat_survives_eviction_and_drives_tiers(self):
        cache = ShardedResultCache(shards=1, capacity_per_shard=4)
        assert cache.backend_for("t", "k") == "reference"
        for _ in range(cache.tier_threaded):
            cache.get("t", "k")
        assert cache.backend_for("t", "k") == "threaded"
        for _ in range(cache.tier_pycodegen):
            cache.get("t", "k")
        assert cache.backend_for("t", "k") == "pycodegen"
        # Fill the single shard far past capacity; "k" may be evicted
        # but its heat (tracked beside the shards) must persist.
        for i in range(16):
            cache.put("t", f"other-{i}", {"i": i})
        assert cache.backend_for("t", "k") == "pycodegen"
        stats = cache.stats()
        assert stats["evictions"] > 0
        assert stats["entries"] <= 4

    def test_stats_shape(self):
        cache = ShardedResultCache(shards=3, capacity_per_shard=8)
        cache.put("t", "a", {})
        cache.get("t", "a")
        cache.get("t", "b")
        stats = cache.stats()
        assert len(stats["shards"]) == 3
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert 0.0 <= stats["shard_balance"] <= 1.0


# ----------------------------------------------------------------------
# App routing and request orchestration
# ----------------------------------------------------------------------

def _app(**kwargs) -> ServeApp:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("cache_capacity", 16)
    return ServeApp(**kwargs)


def _post_run(app, body: dict):
    return app.handle("POST", "/run",
                      json.dumps(body).encode("utf-8"))


class TestServeApp:
    def test_unknown_path_and_method(self):
        async def go():
            app = _app()
            try:
                assert (await app.handle("GET", "/nope", b""))[0] == 404
                assert (await app.handle("POST", "/stats", b""))[0] == 405
                assert (await app.handle("GET", "/run", b""))[0] == 405
            finally:
                app.close()

        _run(go())

    def test_bad_json_is_400(self):
        async def go():
            app = _app()
            try:
                status, body = await app.handle("POST", "/run", b"{nope")
                assert status == 400
                assert body["error"]["code"] == "bad_request"
            finally:
                app.close()

        _run(go())

    def test_run_then_cache_hit(self):
        async def go():
            app = _app()
            try:
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "t1"})
                assert status == 200
                assert body["backend"] == "reference"  # cold key
                assert "cached" not in body
                status, again = await _post_run(
                    app, {"workload": "binary", "tenant": "t1"})
                assert status == 200
                assert again["cached"] is True
                assert again["fingerprint"] == body["fingerprint"]
                offline = run_workload(_workload("binary"))
                assert body["fingerprint"] == run_fingerprint(offline)
                assert app.cache_served == 1 and app.executions == 1
            finally:
                app.close()

        _run(go())

    def test_single_flight_coalesces_storm(self):
        async def go():
            app = _app()
            try:
                request = {"workload": "dotproduct", "tenant": "storm"}
                results = await asyncio.gather(
                    *(_post_run(app, request) for _ in range(8)))
                assert all(status == 200 for status, _ in results)
                fingerprints = {body["fingerprint"]
                                for _, body in results}
                assert len(fingerprints) == 1
                # One leader executed; everyone else coalesced or was
                # served from cache.
                assert app.executions == 1
                assert app.coalesced + app.cache_served == 7
            finally:
                app.close()

        _run(go())

    def test_serve_admit_fault_is_structured_500(self):
        async def go():
            app = _app(fault_spec="serve.admit:once")
            try:
                status, body = await _post_run(
                    app, {"workload": "binary"})
                assert status == 500
                assert body["error"]["code"] == "injected_fault"
                # The daemon survives: the next request succeeds.
                status, _ = await _post_run(app, {"workload": "binary"})
                assert status == 200
                assert app.faults.summary()["serve.admit"] == (2, 1)
            finally:
                app.close()

        _run(go())

    def test_deterministic_422_is_cached(self, monkeypatch):
        calls = []

        def boom(*args, **kwargs):
            calls.append(1)
            raise SpecializationBudgetError("over budget", region_id=0)

        async def go():
            app = _app()
            try:
                monkeypatch.setattr("repro.serve.app.run_workload", boom)
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "e"})
                assert status == 422
                assert body["error"]["code"] == "specialization_budget"
                status, body = await _post_run(
                    app, {"workload": "binary", "tenant": "e"})
                assert status == 422
                assert body["cached"] is True
                assert len(calls) == 1
            finally:
                app.close()

        _run(go())

    def test_degraded_run_counts_surface(self):
        async def go():
            app = _app()
            try:
                status, body = await _post_run(app, {
                    "workload": "binary",
                    "tenant": "f",
                    "config": {"faults": "specializer.entry:once"},
                })
                assert status == 200
                assert body["degradation"]["respecializations"] > 0
                health = app._healthz()
                assert health["degraded_runs"] == 1
                stats = app._stats()
                assert stats["degradation"]["respecializations"] > 0
                assert stats["tenants"]["f"]["degraded_runs"] == 1
            finally:
                app.close()

        _run(go())

    def test_quota_429(self):
        async def go():
            app = _app(workers=1, tenant_quota=1)
            try:
                slow = _post_run(app, {"workload": "chebyshev",
                                       "tenant": "q"})
                fast = _post_run(app, {"workload": "binary",
                                       "tenant": "q"})
                (s1, _), (s2, b2) = await asyncio.gather(slow, fast)
                statuses = sorted((s1, s2))
                assert statuses == [200, 429] or statuses == [200, 200]
                if 429 in (s1, s2):
                    assert app.admission.rejected_quota == 1
            finally:
                app.close()

        _run(go())

    def test_healthz_and_stats_endpoints(self):
        async def go():
            app = _app()
            try:
                status, health = await app.handle("GET", "/healthz", b"")
                assert status == 200 and health["status"] == "ok"
                status, stats = await app.handle("GET", "/stats", b"")
                assert status == 200
                assert "cache" in stats and "admission" in stats
                status, listing = await app.handle(
                    "GET", "/workloads", b"")
                assert status == 200
                assert "binary" in listing["workloads"]
            finally:
                app.close()

        _run(go())
