"""Tests for the load generator: sampling, plans, HTTP end-to-end."""

import asyncio
import random

from repro.serve.loadgen import (
    Client,
    SpawnedDaemon,
    ZipfSampler,
    key_universe,
    plan_faulted,
    plan_storm,
    plan_thrash,
    plan_zipf,
    run_leg,
    verify_offline,
    wait_ready,
)


class TestSampling:
    def test_zipf_is_deterministic(self):
        a = ZipfSampler(50, 1.1, random.Random(7))
        b = ZipfSampler(50, 1.1, random.Random(7))
        assert [a.sample() for _ in range(200)] == \
               [b.sample() for _ in range(200)]

    def test_zipf_is_skewed(self):
        sampler = ZipfSampler(100, 1.2, random.Random(3))
        draws = [sampler.sample() for _ in range(2000)]
        assert all(0 <= r < 100 for r in draws)
        head = sum(1 for r in draws if r < 10)
        assert head > len(draws) * 0.4   # the head dominates

    def test_universe_and_plans_deterministic(self):
        u1 = key_universe(4, ("binary", "query"), 2, random.Random(11))
        u2 = key_universe(4, ("binary", "query"), 2, random.Random(11))
        assert u1 == u2
        assert len(u1) == 4 * 2 * 2
        p1 = plan_zipf(u1, 50, 1.1, random.Random(5))
        p2 = plan_zipf(u2, 50, 1.1, random.Random(5))
        assert p1 == p2

    def test_thrash_keys_unique_and_disjoint(self):
        universe = key_universe(2, ("binary",), 3, random.Random(1))
        thrash = plan_thrash(("binary",), 20, random.Random(1))
        universe_keys = {(r["workload"], tuple(r["config"].items()))
                         for r in universe}
        thrash_keys = {(r["workload"], tuple(r["config"].items()))
                       for r in thrash}
        assert len(thrash_keys) == 20
        assert not universe_keys & thrash_keys

    def test_storm_waves_are_identical_within(self):
        waves = plan_storm(("binary", "query"), 2, 5)
        assert len(waves) == 2
        for wave in waves:
            assert len(wave) == 5
            assert all(r == wave[0] for r in wave)
        assert waves[0][0] != waves[1][0]

    def test_faulted_plan_mixes_rungs(self):
        requests = plan_faulted(("binary",), 6)
        specs = [r["config"]["faults"] for r in requests]
        assert "specializer.entry:once" in specs
        assert "specializer.entry" in specs


class TestEndToEnd:
    def test_spawned_daemon_serves_traffic(self):
        daemon = SpawnedDaemon(["--port", "0", "--workers", "2",
                                "--cache-capacity", "8"])
        try:
            async def go():
                health = await wait_ready(daemon.host, daemon.port)
                assert health["status"] == "ok"
                universe = key_universe(2, ("binary",), 2,
                                        random.Random(2))
                requests = plan_zipf(universe, 12, 1.1,
                                     random.Random(2))
                leg = await run_leg("zipf", daemon.host, daemon.port,
                                    requests, clients=4)
                assert leg.statuses == {"200": 12}
                assert leg.transport_errors == 0
                assert leg.mismatched_fingerprints == 0
                # Repeats of the four distinct keys must be served
                # from cache or coalesced.
                assert leg.cached + leg.coalesced >= 12 - len(universe)
                offline = verify_offline(leg, sample=0,
                                         rng=random.Random(2))
                assert offline["checked"] == len(leg.fingerprints) > 0
                assert offline["matched"] == offline["checked"]
                return leg

            asyncio.run(go())
        finally:
            daemon.stop()

    def test_client_reports_structured_errors(self):
        daemon = SpawnedDaemon(["--port", "0", "--workers", "2"])
        try:
            async def go():
                await wait_ready(daemon.host, daemon.port)
                client = Client(daemon.host, daemon.port)
                try:
                    status, body, _ = await client.request(
                        "POST", "/run", {"workload": "bogus"})
                    assert status == 400
                    assert body["error"]["code"] == "bad_request"
                    status, body, _ = await client.request(
                        "GET", "/stats")
                    assert status == 200
                    assert body["server"]["status_counts"]["400"] == 1
                finally:
                    await client.close()

            asyncio.run(go())
        finally:
            daemon.stop()
