"""Unit-level tests for specializer mechanics and emitted-code shape."""

import pytest

from repro.config import ALL_ON
from repro.dyc import compile_annotated, compile_static
from repro.errors import SpecializationError
from repro.frontend import compile_source
from repro.ir import (
    BasicBlock,
    Branch,
    ExitRegion,
    Function,
    Jump,
    Memory,
    Move,
    Reg,
    Return,
)
from repro.machine import Machine
from repro.runtime.cache import UncheckedCache
from repro.runtime.specializer import Specializer, SpecializedCode


def emitted_code(src, *args, config=ALL_ON, memory=None):
    module = compile_source(src)
    compiled = compile_annotated(module, config)
    machine, runtime = compiled.make_machine(memory=memory)
    result = machine.run(module.main or "f", *args)
    cache = runtime.entry_caches[0]
    code = (cache._value if isinstance(cache, UncheckedCache)
            else next(iter(cache.items()))[1])
    return result, code, runtime


class TestThreadJumps:
    def _code(self, blocks, entry):
        function = Function("r", (), blocks={
            b.label: b for b in blocks
        }, entry=entry)
        return SpecializedCode(region_id=0, function=function)

    def test_trivial_chain_collapsed(self):
        code = self._code([
            BasicBlock("a", [Jump("b")]),
            BasicBlock("b", [Jump("c")]),
            BasicBlock("c", [Move("x", Reg("y")), Return(None)]),
        ], entry="a")
        Specializer._thread_jumps(code, protected={"a"})
        assert set(code.function.blocks) == {"a", "c"}
        assert code.function.blocks["a"].instrs == [Jump("c")]

    def test_protected_blocks_kept(self):
        code = self._code([
            BasicBlock("a", [Jump("b")]),
            BasicBlock("b", [Jump("c")]),
            BasicBlock("c", [Return(None)]),
        ], entry="a")
        Specializer._thread_jumps(code, protected={"a", "b"})
        assert "b" in code.function.blocks

    def test_branch_targets_retargeted(self):
        code = self._code([
            BasicBlock("a", [Branch(Reg("c"), "t1", "t2")]),
            BasicBlock("t1", [Jump("end")]),
            BasicBlock("t2", [Move("x", Reg("y")), Jump("end")]),
            BasicBlock("end", [Return(None)]),
        ], entry="a")
        Specializer._thread_jumps(code, protected={"a"})
        term = code.function.blocks["a"].instrs[-1]
        assert term.if_true == "end"     # threaded through t1
        assert term.if_false == "t2"     # t2 has real content

    def test_jump_absorbs_singleton_exit(self):
        code = self._code([
            BasicBlock("a", [Move("x", Reg("y")), Jump("ex")]),
            BasicBlock("ex", [ExitRegion(0)]),
        ], entry="a")
        Specializer._thread_jumps(code, protected={"a"})
        assert code.function.blocks["a"].instrs[-1] == ExitRegion(0)
        assert "ex" not in code.function.blocks

    def test_context_map_updated(self):
        code = self._code([
            BasicBlock("a", [Jump("b")]),
            BasicBlock("b", [Jump("c")]),
            BasicBlock("c", [Return(None)]),
        ], entry="a")
        code.contexts[("lbl", frozenset(), (1,))] = "b"
        Specializer._thread_jumps(code, protected={"a"})
        assert code.contexts[("lbl", frozenset(), (1,))] == "c"


class TestEmittedCodeShape:
    def test_no_makestatic_in_emitted_code(self):
        from repro.ir import MakeDynamic, MakeStatic
        src = """
        func f(x, n) {
            make_static(n, i);
            var s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + x; }
            make_dynamic(n);
            return s + n;
        }
        """
        _, code, _ = emitted_code(src, 2, 4)
        for block in code.function.blocks.values():
            for instr in block.instrs:
                assert not isinstance(instr, (MakeStatic, MakeDynamic))

    def test_emitted_code_verifies_structurally(self):
        from repro.ir import verify_function
        src = """
        func f(v, w, n) {
            make_static(v, n, i);
            var s = 0.0;
            for (i = 0; i < n; i = i + 1) { s = s + v@[i] * w[i]; }
            return s;
        }
        """
        mem = Memory()
        v = mem.alloc_array([1.0, 0.0, 2.0])
        w = mem.alloc_array([4.0, 5.0, 6.0])
        _, code, _ = emitted_code(src, v, w, 3, memory=mem)
        verify_function(code.function)

    def test_footprint_tracks_instruction_count(self):
        src = "func f(x, n) { make_static(n); return x + n * n; }"
        _, code, _ = emitted_code(src, 1, 3)
        assert code.footprint == code.function.instruction_count()

    def test_make_dynamic_residualizes_value(self):
        src = """
        func f(x, n) {
            make_static(n);
            var a = n * 2;
            make_dynamic(n);
            return a + n + x;
        }
        """
        result, code, _ = emitted_code(src, 10, 4)
        assert result == 22
        # n's value (4) must appear as a residual constant move.
        from repro.ir import Imm
        moves = [
            i for b in code.function.blocks.values() for i in b.instrs
            if isinstance(i, Move) and i.src == Imm(4)
        ]
        assert moves, "make_dynamic must materialize the static value"


class TestGuardrails:
    def test_runaway_specialization_detected(self):
        import repro.runtime.specializer as sp
        # An annotated loop whose bound is *dynamic* is demoted (safe);
        # but a static chain that simply never converges is caught by
        # the context limit.
        src = """
        func f(x, n) {
            make_static(n, i);
            var i = 0;
            while (i >= 0) { i = i + 1; }
            return x;
        }
        """
        module = compile_source(src)
        compiled = compile_annotated(module)
        machine, _ = compiled.make_machine()
        old = sp.MAX_CONTEXTS_PER_BATCH
        sp.MAX_CONTEXTS_PER_BATCH = 500
        try:
            with pytest.raises(SpecializationError, match="exceeded"):
                machine.run("f", 1, 3)
        finally:
            sp.MAX_CONTEXTS_PER_BATCH = old

    def test_missing_entry_key_reported(self):
        src = "func f(x, n) { make_static(n); return x + n; }"
        module = compile_source(src)
        compiled = compile_annotated(module)
        machine, runtime = compiled.make_machine()
        from repro.ir import EnterRegion
        # Simulate a corrupted host env (n absent) via direct dispatch.
        instr = EnterRegion(region_id=0, keys=("n",), exits=())
        with pytest.raises(SpecializationError, match="undefined"):
            runtime.enter_region(machine, instr, {"x": 1})


class TestPromotionMechanics:
    SRC = """
    func f(x, n) {
        make_static(n);
        var a = n + 1;
        n = x * 2;
        var b = n + a;
        n = x + 100;
        var c = n + b;
        return c;
    }
    """

    def test_chained_promotions(self):
        module = compile_source(self.SRC)
        static_machine = Machine(compile_static(module))
        compiled = compile_annotated(module)
        machine, runtime = compiled.make_machine()
        for x in (1, 2, 1, 5):
            assert machine.run("f", x, 3) == static_machine.run(
                "f", x, 3)
        stats = runtime.stats.regions[0]
        assert stats.internal_promotion_points >= 2
        assert stats.internal_promotions_executed >= 8

    def test_promotion_cache_reuse(self):
        module = compile_source(self.SRC)
        compiled = compile_annotated(module)
        machine, runtime = compiled.make_machine()
        machine.run("f", 1, 3)
        generated_after_first = \
            runtime.stats.regions[0].instructions_generated
        machine.run("f", 1, 3)   # all promoted values recur: no growth
        assert (runtime.stats.regions[0].instructions_generated
                == generated_after_first)
