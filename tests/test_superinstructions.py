"""Superinstruction fusion in the threaded backend: profile-guided
quickening must leave results and ExecutionStats byte-identical to the
reference interpreter while actually fusing hot adjacent steps."""

import dataclasses

import pytest

from repro.config import ALL_ON
from repro.ir import FunctionBuilder, Module, Op
from repro.machine import ALPHA_21164, Machine
from repro.machine.threaded import (
    DEFAULT_FUSION_THRESHOLD,
    ThreadedBackend,
    resolve_fusion_threshold,
)
from repro.workloads import WORKLOADS_BY_NAME

from tests.test_threaded_backend import _run_under, _stats_dict


class TestThreshold:
    def test_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUSION_THRESHOLD", raising=False)
        assert resolve_fusion_threshold() == DEFAULT_FUSION_THRESHOLD
        monkeypatch.setenv("REPRO_FUSION_THRESHOLD", "5")
        assert resolve_fusion_threshold() == 5
        monkeypatch.setenv("REPRO_FUSION_THRESHOLD", "0")
        assert resolve_fusion_threshold() == 0
        monkeypatch.setenv("REPRO_FUSION_THRESHOLD", "nope")
        assert resolve_fusion_threshold() == DEFAULT_FUSION_THRESHOLD


def _hot_module():
    """A function whose body is fusible pairs (imm moves + reg/imm
    binops), called repeatedly so the translation-cache hot path counts
    entries past any small threshold."""
    b = FunctionBuilder("f", ("n",))
    b.move("a", 3)
    b.move("b", 4)
    b.binop("c", Op.MUL, "a", 5)
    b.binop("d", Op.ADD, "c", 7)
    b.binop("e", Op.ADD, "d", "n")
    b.ret("e")
    mod = Module()
    mod.add_function(b.finish())
    return mod


class TestQuickening:
    def test_entry_counting_quickens(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION_THRESHOLD", "1")
        mod = _hot_module()
        machine = Machine(mod, backend="threaded")
        values = [machine.run("f", i) for i in range(4)]
        assert values == [22 + i for i in range(4)]
        backend = machine._backend
        assert isinstance(backend, ThreadedBackend)
        assert backend.quickened_functions >= 1
        assert backend.fused_specialized + backend.fused_generic > 0

    def test_fused_stats_match_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION_THRESHOLD", "1")
        fused = {}
        for backend in ("reference", "threaded"):
            mod = _hot_module()
            machine = Machine(mod, backend=backend)
            values = [machine.run("f", i) for i in range(4)]
            fused[backend] = (values, _stats_dict(machine.stats))
        assert fused["reference"] == fused["threaded"]

    def test_disabled_threshold_never_fuses(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION_THRESHOLD", "0")
        mod = _hot_module()
        machine = Machine(mod, backend="threaded")
        for i in range(4):
            machine.run("f", i)
        backend = machine._backend
        assert backend.quickened_functions == 0
        assert backend.fused_specialized + backend.fused_generic == 0


class TestWorkloadIdentity:
    """With fusion forced on everywhere (threshold 1), the full
    static+dynamic runs must stay byte-identical to the reference —
    fused steps compose the original closures exactly."""

    @pytest.mark.parametrize("name", [
        "dinero", "m88ksim", "chebyshev", "pnmconvol",
    ])
    def test_threshold_one_byte_identical(self, name, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION_THRESHOLD", "1")
        workload = WORKLOADS_BY_NAME[name]
        threaded = _run_under(workload, ALL_ON, "threaded")
        monkeypatch.delenv("REPRO_FUSION_THRESHOLD")
        reference = _run_under(workload, ALL_ON, "reference")
        assert reference == threaded

    def test_threshold_one_pycodegen_fallback_identical(self, monkeypatch):
        """The threaded rung under the pycodegen backend (cold tier,
        degradations) quickens too; stats must not drift."""
        monkeypatch.setenv("REPRO_FUSION_THRESHOLD", "1")
        workload = WORKLOADS_BY_NAME["romberg"]
        pycodegen = _run_under(workload, ALL_ON, "pycodegen")
        monkeypatch.delenv("REPRO_FUSION_THRESHOLD")
        reference = _run_under(workload, ALL_ON, "reference")
        assert reference == pycodegen


def _loop_module():
    b = FunctionBuilder("f", ("n",))
    b.move("i", 0)
    b.move("acc", 0)
    b.jump("head")
    b.label("head")
    b.binop("go", Op.LT, "i", "n")
    b.branch("go", "body", "done")
    b.label("body")
    b.move("step", 2)
    b.binop("acc", Op.ADD, "acc", "step")
    b.binop("i", Op.ADD, "i", 1)
    b.jump("head")
    b.label("done")
    b.ret("acc")
    mod = Module()
    mod.add_function(b.finish())
    return mod


class TestDispatchFuel:
    def test_single_entry_loop_quickens_mid_run(self, monkeypatch):
        """A function entered once whose loop runs inside the dispatch
        loop never re-enters translation(); the driver's dispatch-fuel
        counter must still trigger quickening mid-run."""
        monkeypatch.setenv("REPRO_FUSION_THRESHOLD", "1")
        machine = Machine(_loop_module(), backend="threaded")
        # A single entry; fuel = threshold * 64 = 64 block dispatches,
        # and 200 iterations dispatch far more than that.
        assert machine.run("f", 200) == 400
        backend = machine._backend
        assert backend.quickened_functions >= 1

    def test_mid_run_quickening_stats_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION_THRESHOLD", "1")
        threaded = Machine(_loop_module(), backend="threaded")
        value = threaded.run("f", 200)
        monkeypatch.delenv("REPRO_FUSION_THRESHOLD")
        reference = Machine(_loop_module(), backend="reference")
        assert reference.run("f", 200) == value == 400
        assert _stats_dict(reference.stats) == _stats_dict(threaded.stats)
