"""Tests for the serve supervisor: state file, recovery, drain.

The integration tests fork a real ``repro.serve.supervisor`` subprocess
(in its own session, via the chaos harness's :class:`SupervisedFleet`
helper) and drive it over HTTP with the loadgen client.  They are kept
deliberately small — a couple of workers, a handful of requests, tight
heartbeat knobs — so the whole module stays in the seconds range.
"""

import asyncio
import pickle
import signal
import time

from repro.chaos.orchestrator import SupervisedFleet, kill_worker
from repro.serve.loadgen import Client, wait_ready
from repro.serve.supervisor import main, read_state, write_state

#: Heartbeats tuned for test speed (defaults are production-paced).
FAST_BEAT = {
    "REPRO_HEARTBEAT_INTERVAL": "0.1",
    "REPRO_HEARTBEAT_TIMEOUT": "5.0",
}


# ----------------------------------------------------------------------
# State file
# ----------------------------------------------------------------------

class TestStateFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "supervisor.json")
        write_state(path, {"schema": 1, "workers": []})
        assert read_state(path) == {"schema": 1, "workers": []}
        # Atomic rewrite: no .tmp litter next to the state file.
        assert list(tmp_path.glob("*.tmp*")) == []

    def test_read_missing_or_corrupt_is_none(self, tmp_path):
        assert read_state(str(tmp_path / "nope.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_state(str(bad)) is None


# ----------------------------------------------------------------------
# Argument validation (in-process: rejected before any fork)
# ----------------------------------------------------------------------

class TestArgValidation:
    def test_bad_fault_spec_exits_2(self, capsys):
        assert main(["--faults", "serve.respond:nope=1"]) == 2
        assert "bad fault spec" in capsys.readouterr().err

    def test_comma_joined_points_exit_2(self, capsys):
        # Points are ';'-separated; a ','-joined pair reads as a bogus
        # parameter and must die here, not crash-loop in the workers.
        code = main(["--faults",
                     "serve.respond:every=3,persist.fsync:every=5"])
        assert code == 2

    def test_snapshot_out_requires_persist_dir(self, tmp_path, capsys):
        code = main(["--snapshot-out", str(tmp_path / "out.snap")])
        assert code == 2
        assert "requires --persist-dir" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Live fleet: crash recovery, supervision counters, graceful drain
# ----------------------------------------------------------------------

def _wait_state(fleet, predicate, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = fleet.state()
        if state and predicate(state):
            return state
        time.sleep(0.05)
    raise AssertionError(
        f"supervisor state never satisfied predicate: {fleet.state()}")


async def _post(host, port, body):
    client = Client(host, port)
    try:
        return await client.request("POST", "/run", body)
    finally:
        await client.close()


async def _get(host, port, path):
    client = Client(host, port)
    try:
        return await client.request("GET", path)
    finally:
        await client.close()


class TestSupervisedFleet:
    def test_crash_recovery_and_graceful_drain(self, tmp_path):
        state_file = str(tmp_path / "supervisor.json")
        snapshot_out = str(tmp_path / "drain.snap")
        fleet = SupervisedFleet(
            procs=2, fault_spec=None,
            persist_dir=str(tmp_path / "store"),
            state_file=state_file,
            snapshot_out=snapshot_out,
            env_overrides=FAST_BEAT)
        try:
            state = fleet.wait_ready(procs=2)
            host, port = state["host"], state["port"]
            assert state["kind"] == "serve-supervisor"
            assert state["schema"] == 1

            async def warm():
                await wait_ready(host, port)
                status, body, _ = await _post(
                    host, port,
                    {"workload": "binary", "tenant": "sup",
                     "echo": "sup-0"})
                assert status == 200 and body["echo"] == "sup-0"
                return body["fingerprint"]

            fingerprint = asyncio.run(warm())

            outcome = kill_worker(fleet, slot=0)
            assert outcome["recycled"], outcome
            state = fleet.state()
            assert state["restarts_total"] >= 1
            assert state["crash_exits"] >= 1

            async def after():
                await wait_ready(host, port)
                # The recycled worker serves the same bytes, warm from
                # the shared store (no re-specialization needed).
                status, body, _ = await _post(
                    host, port,
                    {"workload": "binary", "tenant": "sup",
                     "echo": "sup-1"})
                assert status == 200
                assert body["fingerprint"] == fingerprint
                assert body["echo"] == "sup-1"
                # Workers surface supervision counters on /stats via
                # the exported state-file path.
                status, stats, _ = await _get(host, port, "/stats")
                assert status == 200
                sup = stats["supervisor"]
                assert sup["readable"] is True
                assert sup["restarts_total"] >= 1

            asyncio.run(after())

            fleet.terminate()
            assert fleet.proc.wait(timeout=30) == 0
            final = fleet.state()
            assert final["shutting_down"] is True
            assert final["workers"] == []
            assert final["clean_exits"] >= 2
            with open(snapshot_out, "rb") as handle:
                snap = pickle.load(handle)
            assert snap.get("kind") == "snapshot"
            assert snap.get("files")
        finally:
            fleet.destroy()

    def test_hung_worker_is_killed_and_recycled(self, tmp_path):
        fleet = SupervisedFleet(
            procs=1,
            # Third heartbeat check goes silent: a simulated hang.
            fault_spec="serve.worker_heartbeat:at=3",
            persist_dir=str(tmp_path / "store"),
            state_file=str(tmp_path / "supervisor.json"),
            env_overrides={
                "REPRO_HEARTBEAT_INTERVAL": "0.1",
                "REPRO_HEARTBEAT_TIMEOUT": "0.6",
            })
        try:
            state = fleet.wait_ready(procs=1)
            first_pid = state["workers"][0]["pid"]
            state = _wait_state(
                fleet, lambda s: s.get("hang_kills", 0) >= 1
                and s.get("workers")
                and s["workers"][0]["pid"] != first_pid)
            assert state["restarts_total"] >= 1
        finally:
            fleet.destroy()

    def test_sigterm_with_no_traffic_exits_clean(self, tmp_path):
        fleet = SupervisedFleet(
            procs=2, fault_spec=None,
            persist_dir=str(tmp_path / "store"),
            state_file=str(tmp_path / "supervisor.json"),
            env_overrides=FAST_BEAT)
        try:
            fleet.wait_ready(procs=2)
            fleet.proc.send_signal(signal.SIGTERM)
            assert fleet.proc.wait(timeout=30) == 0
            final = fleet.state()
            assert final["clean_exits"] == 2
            assert final["crash_exits"] == 0
        finally:
            fleet.destroy()
