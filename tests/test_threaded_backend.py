"""The direct-threaded backend must be indistinguishable from the
reference interpreter: byte-identical ExecutionStats (cycles,
instructions, dc_cycles, dispatch_cycles, scope accounting) and identical
results for every workload, plus correct translation-cache invalidation
when emitted code is patched."""

import dataclasses

import pytest

from repro.config import ALL_OFF, ALL_ON
from repro.dyc import compile_annotated, compile_static
from repro.errors import MachineError, TrapError
from repro.evalharness.runner import _machine_kwargs
from repro.frontend import compile_source
from repro.ir import BasicBlock, FunctionBuilder, Memory, Module, Op
from repro.ir.eval import eval_binop, eval_unop
from repro.ir.instructions import Imm, Move, Return
from repro.machine import ALPHA_21164, BACKENDS, Machine
from repro.machine.threaded import BINOP_FUNCS, UNOP_FUNCS
from repro.workloads import ALL_WORKLOADS, WORKLOADS_BY_NAME


def _stats_dict(stats):
    return dataclasses.asdict(stats.snapshot())


def _run_under(workload, config, backend):
    """One static + dynamic execution; returns the full observable state."""
    module = compile_source(workload.source)
    static_module = compile_static(module)
    compiled = compile_annotated(module, config)
    tracked = frozenset(workload.region_functions)
    kwargs = _machine_kwargs(workload, ALPHA_21164, backend)

    static_memory = Memory()
    static_input = workload.setup(static_memory)
    static_machine = Machine(static_module, memory=static_memory,
                             tracked=tracked, **kwargs)
    static_result = static_machine.run(workload.entry,
                                       *static_input.args)

    dynamic_memory = Memory()
    dynamic_input = workload.setup(dynamic_memory)
    dynamic_machine, _runtime = compiled.make_machine(
        memory=dynamic_memory, tracked=tracked, **kwargs,
    )
    dynamic_result = dynamic_machine.run(workload.entry,
                                         *dynamic_input.args)
    return {
        "static": _stats_dict(static_machine.stats),
        "dynamic": _stats_dict(dynamic_machine.stats),
        "static_result": static_result,
        "dynamic_result": dynamic_result,
    }


class TestBackendEquivalence:
    @pytest.mark.parametrize(
        "name", [w.name for w in ALL_WORKLOADS]
    )
    def test_all_workloads_byte_identical(self, name):
        """Acceptance: every workload, both runs, full stats equality."""
        workload = WORKLOADS_BY_NAME[name]
        reference = _run_under(workload, ALL_ON, "reference")
        threaded = _run_under(workload, ALL_ON, "threaded")
        assert reference == threaded

    @pytest.mark.parametrize("name,config", [
        ("dinero", ALL_ON.without("strength_reduction")),
        ("dotproduct", ALL_OFF),
        ("pnmconvol",
         ALL_ON.without("zero_copy_propagation",
                        "dead_assignment_elimination")),
        ("chebyshev", ALL_ON.without("complete_loop_unrolling")),
        ("m88ksim", ALL_ON.without("internal_promotions")),
    ])
    def test_sample_ablations_byte_identical(self, name, config):
        workload = WORKLOADS_BY_NAME[name]
        reference = _run_under(workload, config, "reference")
        threaded = _run_under(workload, config, "threaded")
        assert reference == threaded


class TestEvaluatorTables:
    #: (lhs, rhs) samples covering int/float/bool-ish and trap cases.
    SAMPLES = [(7, 3), (-8, 3), (2.5, 4.0), (0, 5), (6, 0), (1.5, 0.0),
               (-7, -2), (3, 1.5)]

    def test_binop_funcs_match_eval_binop(self):
        for op, func in BINOP_FUNCS.items():
            for lhs, rhs in self.SAMPLES:
                try:
                    expected = eval_binop(op, lhs, rhs)
                except TrapError as err:
                    with pytest.raises(TrapError) as caught:
                        func(lhs, rhs)
                    assert str(caught.value) == str(err)
                else:
                    got = func(lhs, rhs)
                    assert got == expected, (op, lhs, rhs)
                    assert type(got) is type(expected), (op, lhs, rhs)

    def test_unop_funcs_match_eval_unop(self):
        for op, func in UNOP_FUNCS.items():
            for value in (5, -5, 0, 2.25, -0.5):
                expected = eval_unop(op, value)
                got = func(value)
                assert got == expected and type(got) is type(expected)


class TestTranslationCache:
    def _constant_module(self, value):
        b = FunctionBuilder("f", ())
        b.move("x", value)
        b.ret("x")
        mod = Module()
        mod.add_function(b.finish())
        return mod

    def test_translations_are_cached(self):
        mod = self._constant_module(1)
        machine = Machine(mod, backend="threaded")
        assert machine.run("f") == 1
        fn = mod.functions["f"]
        backend = machine._backend
        first = backend.translation(
            fn, 0.0, ALPHA_21164.static_schedule_factor
        )
        assert machine.run("f") == 1
        again = backend.translation(
            fn, 0.0, ALPHA_21164.static_schedule_factor
        )
        assert again is first

    def test_version_bump_invalidates_translation(self):
        """Patching a function's blocks must force retranslation."""
        mod = self._constant_module(1)
        machine = Machine(mod, backend="threaded")
        assert machine.run("f") == 1

        fn = mod.functions["f"]
        label = fn.entry
        fn.blocks[label] = BasicBlock(
            label, [Move("x", Imm(2)), Return(Imm(2))]
        )
        # Without a version bump the stale translation would still run;
        # bump_version is what the specializer calls after patching.
        fn.bump_version()
        assert machine.run("f") == 2

    def test_stats_identical_after_patch(self):
        """The retranslated code charges exactly like the reference."""
        results = {}
        for backend in BACKENDS:
            mod = self._constant_module(1)
            machine = Machine(mod, backend=backend)
            machine.run("f")
            fn = mod.functions["f"]
            fn.blocks[fn.entry] = BasicBlock(
                fn.entry, [Move("x", Imm(2)), Move("y", Imm(3)),
                           Return(Imm(5))]
            )
            fn.bump_version()
            value = machine.run("f")
            results[backend] = (
                value, dataclasses.asdict(machine.stats.snapshot())
            )
        assert results["reference"] == results["threaded"]

    def test_runtime_patch_retranslates_region_code(self):
        """Internal promotions patch emitted code mid-execution; the
        threaded backend must pick up the new blocks (m88ksim exercises
        lazy promotion continuations)."""
        workload = WORKLOADS_BY_NAME["m88ksim"]
        reference = _run_under(workload, ALL_ON, "reference")
        threaded = _run_under(workload, ALL_ON, "threaded")
        assert reference == threaded
        assert reference["dynamic"]["dispatches"] > 0


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        mod = Module()
        b = FunctionBuilder("f", ())
        b.ret(0)
        mod.add_function(b.finish())
        with pytest.raises(MachineError):
            Machine(mod, backend="jit")

    def test_backends_listing(self):
        assert BACKENDS == ("reference", "threaded", "pycodegen")

    def test_trap_matches_reference(self):
        for backend in BACKENDS:
            b = FunctionBuilder("f", ("n",))
            b.binop("x", Op.DIV, 1, "n")
            b.ret("x")
            mod = Module()
            mod.add_function(b.finish())
            machine = Machine(mod, backend=backend)
            with pytest.raises(TrapError):
                machine.run("f", 0)
