"""Integration tests for the ten benchmark workloads.

Each workload must (a) compile through the whole pipeline, (b) produce
*identical output* statically and dynamically compiled (the runner
verifies checksums), and (c) exercise the optimizations the paper's
Table 2 attributes to it.
"""

import pytest

from repro.config import ALL_ON
from repro.evalharness.runner import run_workload
from repro.workloads import (
    ALL_WORKLOADS,
    WORKLOADS_BY_NAME,
    get_workload,
    make_dotproduct,
    make_m88ksim,
)


@pytest.fixture(scope="module")
def results():
    return {w.name: run_workload(w) for w in ALL_WORKLOADS}


class TestRegistry:
    def test_ten_workloads(self):
        assert len(ALL_WORKLOADS) == 10
        assert len(WORKLOADS_BY_NAME) == 10

    def test_get_workload(self):
        assert get_workload("dinero").name == "dinero"
        with pytest.raises(KeyError, match="known"):
            get_workload("nope")

    def test_factories(self):
        assert make_m88ksim(5).name == "m88ksim-5bp"
        assert make_dotproduct(0.5).name == "dotproduct-50z"
        assert make_dotproduct(0.9).name == "dotproduct"


class TestCorrectness:
    @pytest.mark.parametrize(
        "name", [w.name for w in ALL_WORKLOADS]
    )
    def test_outputs_verified(self, results, name):
        assert results[name].outputs_match

    @pytest.mark.parametrize(
        "name", [w.name for w in ALL_WORKLOADS]
    )
    def test_every_region_entered(self, results, name):
        result = results[name]
        for fn in result.workload.region_functions:
            assert result.region_entries.get(fn, 0) > 0, fn

    def test_mipsi_actually_sorts(self):
        result = run_workload(get_workload("mipsi"))
        # The checksum covers the sorted array; verified against static.
        assert result.outputs_match

    def test_dinero_hits_reasonable(self, results):
        static_hits, dynamic_hits = results["dinero"].return_values
        assert static_hits == dynamic_hits
        # With 80% sequential locality and 32B blocks, hit rate is high.
        from repro.workloads.dinero import TRACE_LENGTH
        assert 0.3 < static_hits / TRACE_LENGTH < 0.99


class TestTable2Attribution:
    def test_dinero(self, results):
        [stats] = list(results["dinero"].region_stats.values())
        assert stats.unrolling == "SW"
        assert stats.used_static_loads and stats.used_sr
        assert stats.used_unchecked_dispatch
        assert not stats.used_internal_promotions

    def test_mipsi(self, results):
        [stats] = list(results["mipsi"].region_stats.values())
        assert stats.unrolling == "MW"
        assert stats.used_static_loads
        assert stats.used_static_calls
        assert stats.used_internal_promotions

    def test_pnmconvol(self, results):
        [stats] = list(results["pnmconvol"].region_stats.values())
        assert stats.unrolling == "SW"
        assert stats.used_zcp and stats.used_dae
        # The 83%-zero matrix folds most iterations away entirely.
        assert stats.zcp_zero_hits >= 80
        assert stats.dae_removed >= 80

    def test_viewperf_two_regions(self, results):
        result = results["viewperf"]
        assert len(result.region_stats) == 2
        shade_stats = result.stats_for_function("shade")[0]
        assert shade_stats.used_polyvariant_division
        assert shade_stats.divisions_used >= 2

    def test_binary_is_multiway(self, results):
        [stats] = list(results["binary"].region_stats.values())
        assert stats.unrolling == "MW"

    def test_chebyshev_static_calls(self, results):
        [stats] = list(results["chebyshev"].region_stats.values())
        # cos at the nodes and weights: n*(n-1) + n calls per version.
        assert stats.static_calls_folded >= 100

    def test_kernels_no_internal_promotions(self, results):
        for name in ("binary", "chebyshev", "dotproduct", "query",
                     "romberg"):
            [stats] = list(results[name].region_stats.values())
            assert not stats.used_internal_promotions, name


class TestScaling:
    def test_m88ksim_breakpoint_scaling(self):
        none = run_workload(make_m88ksim(0))
        five = run_workload(make_m88ksim(5))
        gen0 = none.region_stats[0].instructions_generated
        gen5 = five.region_stats[0].instructions_generated
        assert gen5 > gen0

    def test_dotproduct_density_scaling(self):
        sparse = run_workload(make_dotproduct(0.9))
        dense = run_workload(make_dotproduct(0.0))
        s_sparse = sparse.region_metrics()[0].asymptotic_speedup
        s_dense = dense.region_metrics()[0].asymptotic_speedup
        assert s_sparse > s_dense

    def test_determinism(self):
        a = run_workload(get_workload("query"))
        b = run_workload(get_workload("query"))
        assert a.static_total_cycles == b.static_total_cycles
        assert a.dynamic_total_cycles == b.dynamic_total_cycles
        assert a.dc_cycles == b.dc_cycles


class TestAblationSafety:
    """Every applicable single ablation still computes correct output
    for every workload (the runner raises on divergence)."""

    @pytest.mark.parametrize("name,ablation", [
        ("dinero", "strength_reduction"),
        ("dinero", "complete_loop_unrolling"),
        ("m88ksim", "unchecked_dispatching"),
        ("m88ksim", "static_loads"),
        ("mipsi", "internal_promotions"),
        ("mipsi", "unchecked_dispatching"),
        ("pnmconvol", "dead_assignment_elimination"),
        ("pnmconvol", "zero_copy_propagation"),
        ("viewperf", "polyvariant_division"),
        ("viewperf", "zero_copy_propagation"),
        ("binary", "unchecked_dispatching"),
        ("chebyshev", "static_calls"),
        ("dotproduct", "static_loads"),
        ("query", "complete_loop_unrolling"),
        ("romberg", "strength_reduction"),
    ])
    def test_ablation_preserves_output(self, name, ablation):
        result = run_workload(get_workload(name),
                              ALL_ON.without(ablation))
        assert result.outputs_match
